#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "dram/device.hpp"

namespace easydram::dram {
namespace {

using namespace easydram::literals;

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() : dev_(Geometry{}, ddr4_1333(), strong_variation()) {}

  /// Variation config where every row tolerates very low tRCD and every
  /// intra-subarray pair clones, so behaviour tests are deterministic.
  static VariationConfig strong_variation() {
    VariationConfig v;
    v.min_trcd = Picoseconds{1000};
    v.max_trcd = Picoseconds{1001};
    v.rowclone_pair_success = 1.0;
    return v;
  }

  std::array<std::uint8_t, 64> pattern(std::uint8_t seed) const {
    std::array<std::uint8_t, 64> p{};
    for (std::size_t i = 0; i < 64; ++i) p[i] = static_cast<std::uint8_t>(seed + i);
    return p;
  }

  DramDevice dev_;
  const TimingParams t_ = ddr4_1333();
};

TEST_F(DeviceTest, GeometryDefaultsMatchPaperCaseStudy) {
  const Geometry g;
  EXPECT_EQ(g.num_banks(), 16u);
  EXPECT_EQ(g.rows_per_bank, 32768u);
  EXPECT_EQ(g.row_bytes, 8192u);
  EXPECT_EQ(g.cols_per_row(), 128u);
  EXPECT_EQ(g.subarrays_per_bank(), 64u);
  EXPECT_EQ(g.capacity_bytes(), 16ull * 32768 * 8192);
}

TEST_F(DeviceTest, TimingPresetSanity) {
  EXPECT_EQ(t_.tRCD, 13500_ps);
  EXPECT_EQ(t_.tRC, t_.tRAS + t_.tRP);
  EXPECT_GT(t_.tRFC, t_.tRP);
  EXPECT_GT(t_.tREFI, t_.tRFC);
}

TEST_F(DeviceTest, ActivateOpensRow) {
  EXPECT_FALSE(dev_.open_row(3).has_value());
  const IssueResult r = dev_.issue(Command::kAct, {3, 77, 0}, 0_ns);
  EXPECT_EQ(r.violations, kNone);
  ASSERT_TRUE(dev_.open_row(3).has_value());
  EXPECT_EQ(*dev_.open_row(3), 77u);
}

TEST_F(DeviceTest, WriteThenReadReturnsData) {
  const auto p = pattern(0x40);
  dev_.issue(Command::kAct, {0, 5, 0}, 0_ns);
  dev_.issue(Command::kWrite, {0, 5, 9}, 20_ns, p);
  const IssueResult r = dev_.issue(Command::kRead, {0, 5, 9}, 60_ns);
  EXPECT_TRUE(r.has_data);
  EXPECT_TRUE(r.data_reliable);
  EXPECT_EQ(std::memcmp(r.data.data(), p.data(), 64), 0);
}

TEST_F(DeviceTest, UnwrittenCellsReadZero) {
  dev_.issue(Command::kAct, {1, 100, 0}, 0_ns);
  const IssueResult r = dev_.issue(Command::kRead, {1, 100, 3}, 20_ns);
  for (const std::uint8_t b : r.data) EXPECT_EQ(b, 0);
}

TEST_F(DeviceTest, EarlyReadFlagsTrcdViolation) {
  dev_.issue(Command::kAct, {0, 1, 0}, 0_ns);
  const IssueResult r = dev_.issue(Command::kRead, {0, 1, 0}, 5_ns);
  EXPECT_TRUE(r.violations & kTrcd);
  // Rows in this fixture tolerate ~1 ns, so 5 ns is still reliable.
  EXPECT_TRUE(r.data_reliable);
}

TEST_F(DeviceTest, ReadBelowCellStrengthCorruptsDataAndCells) {
  VariationConfig weak;
  weak.min_trcd = 9_ns;
  weak.max_trcd = Picoseconds{9001};
  DramDevice dev(Geometry{}, t_, weak);
  const auto p = pattern(0x11);
  dev.issue(Command::kAct, {0, 1, 0}, 0_ns);
  dev.issue(Command::kWrite, {0, 1, 0}, 20_ns, p);
  dev.issue(Command::kPre, {0, 0, 0}, 60_ns);
  // Re-open and read far below the 9 ns minimum.
  dev.issue(Command::kAct, {0, 1, 0}, 100_ns);
  const IssueResult r = dev.issue(Command::kRead, {0, 1, 0}, 102_ns);
  EXPECT_FALSE(r.data_reliable);
  EXPECT_NE(std::memcmp(r.data.data(), p.data(), 64), 0);
  // The corrupted value was restored into the cells: a later nominal read
  // sees the corruption too.
  const IssueResult r2 =
      dev.issue(Command::kRead, {0, 1, 0}, Picoseconds{102'000} + t_.tRCD);
  EXPECT_NE(std::memcmp(r2.data.data(), p.data(), 64), 0);
}

TEST_F(DeviceTest, ReadAtOrAboveCellStrengthIsReliable) {
  VariationConfig weak;
  weak.min_trcd = 9_ns;
  weak.max_trcd = Picoseconds{9001};
  weak.line_jitter = Picoseconds{0};
  DramDevice dev(Geometry{}, t_, weak);
  const auto p = pattern(0x22);
  dev.issue(Command::kAct, {0, 1, 0}, 0_ns);
  dev.issue(Command::kWrite, {0, 1, 0}, 20_ns, p);
  dev.issue(Command::kPre, {0, 0, 0}, 60_ns);
  dev.issue(Command::kAct, {0, 1, 0}, 100_ns);
  const IssueResult r = dev.issue(Command::kRead, {0, 1, 0}, 100_ns + Picoseconds{9001});
  EXPECT_TRUE(r.data_reliable);
  EXPECT_EQ(std::memcmp(r.data.data(), p.data(), 64), 0);
}

TEST_F(DeviceTest, RowClonePatternCopiesRow) {
  const auto p = pattern(0x7);
  // Rows 10 and 11 share subarray 0 of bank 2.
  dev_.issue(Command::kAct, {2, 10, 0}, 0_ns);
  for (std::uint32_t c = 0; c < 4; ++c) {
    dev_.issue(Command::kWrite, {2, 10, c}, Picoseconds{20'000 + 8000 * c}, p);
  }
  dev_.issue(Command::kPre, {2, 0, 0}, 100_ns);

  // ACT(src) -> early PRE -> early ACT(dst).
  dev_.issue(Command::kAct, {2, 10, 0}, 200_ns);
  dev_.issue(Command::kPre, {2, 0, 0}, 203_ns);
  const IssueResult act2 = dev_.issue(Command::kAct, {2, 11, 0}, 206_ns);
  EXPECT_TRUE(act2.rowclone_attempted);
  EXPECT_TRUE(act2.rowclone_success);

  // Destination row now holds the source data.
  const IssueResult r = dev_.issue(Command::kRead, {2, 11, 2}, 206_ns + t_.tRCD);
  EXPECT_EQ(std::memcmp(r.data.data(), p.data(), 64), 0);
}

TEST_F(DeviceTest, RowCloneAcrossSubarraysFails) {
  // Rows 10 and 600 are in different subarrays (512 rows each).
  dev_.issue(Command::kAct, {2, 10, 0}, 0_ns);
  dev_.issue(Command::kPre, {2, 0, 0}, 3_ns);
  const IssueResult act2 = dev_.issue(Command::kAct, {2, 600, 0}, 6_ns);
  EXPECT_TRUE(act2.rowclone_attempted);
  EXPECT_FALSE(act2.rowclone_success);
}

TEST_F(DeviceTest, SlowPreActSequenceIsNotRowClone) {
  dev_.issue(Command::kAct, {2, 10, 0}, 0_ns);
  dev_.issue(Command::kPre, {2, 0, 0}, 50_ns);  // after tRAS: normal.
  const IssueResult act2 = dev_.issue(Command::kAct, {2, 11, 0}, 80_ns);
  EXPECT_FALSE(act2.rowclone_attempted);
}

TEST_F(DeviceTest, EarlyPreThenSlowActIsNotRowClone) {
  dev_.issue(Command::kAct, {2, 10, 0}, 0_ns);
  dev_.issue(Command::kPre, {2, 0, 0}, 3_ns);           // early
  const IssueResult act2 = dev_.issue(Command::kAct, {2, 11, 0}, 100_ns);  // late
  EXPECT_FALSE(act2.rowclone_attempted);
}

TEST_F(DeviceTest, EarliestLegalReadHonorsTrcd) {
  dev_.issue(Command::kAct, {4, 9, 0}, 10_ns);
  const Picoseconds earliest = dev_.earliest_legal(Command::kRead, {4, 9, 0});
  EXPECT_EQ(earliest, 10_ns + t_.tRCD);
}

TEST_F(DeviceTest, EarliestLegalActHonorsTrpAndTrc) {
  dev_.issue(Command::kAct, {4, 9, 0}, 0_ns);
  dev_.issue(Command::kPre, {4, 0, 0}, t_.tRAS);
  const Picoseconds earliest = dev_.earliest_legal(Command::kAct, {4, 9, 0});
  EXPECT_GE(earliest, t_.tRAS + t_.tRP);
  EXPECT_GE(earliest, t_.tRC);
}

TEST_F(DeviceTest, FourActivateWindowEnforced) {
  // Issue 4 ACTs to different bank groups back to back (legal spacing).
  Picoseconds t{0};
  for (std::uint32_t bg = 0; bg < 4; ++bg) {
    dev_.issue(Command::kAct, {bg * 4, 1, 0}, t);
    t += t_.tRRD_S;
  }
  const Picoseconds fifth = dev_.earliest_legal(Command::kAct, {1, 1, 0});
  EXPECT_GE(fifth, t_.tFAW);  // First ACT at 0 + tFAW.
}

TEST_F(DeviceTest, ViolatingTfawIsFlagged) {
  Picoseconds t{0};
  for (std::uint32_t bg = 0; bg < 4; ++bg) {
    dev_.issue(Command::kAct, {bg * 4, 1, 0}, t);
    t += t_.tRRD_S;
  }
  const IssueResult r = dev_.issue(Command::kAct, {1, 1, 0}, t);
  EXPECT_TRUE(r.violations & kTfaw);
}

TEST_F(DeviceTest, ReadClosedBankIsGarbage) {
  const IssueResult r = dev_.issue(Command::kRead, {0, 0, 0}, 0_ns);
  EXPECT_TRUE(r.violations & kBankNotActive);
  EXPECT_FALSE(r.data_reliable);
}

TEST_F(DeviceTest, WriteToClosedBankIsDropped) {
  const auto p = pattern(0x55);
  const IssueResult w = dev_.issue(Command::kWrite, {0, 7, 0}, 0_ns, p);
  EXPECT_TRUE(w.violations & kBankNotActive);
  std::array<std::uint8_t, 64> out{};
  dev_.backdoor_read({0, 7, 0}, out);
  for (const std::uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST_F(DeviceTest, RefreshRequiresIdleBanks) {
  dev_.issue(Command::kAct, {0, 1, 0}, 0_ns);
  const IssueResult r = dev_.issue(Command::kRef, {}, 10_ns);
  EXPECT_TRUE(r.violations & kRefreshNotIdle);
}

TEST_F(DeviceTest, RefreshBookkeeping) {
  EXPECT_EQ(dev_.refreshes_issued(), 0);
  EXPECT_EQ(dev_.refreshes_due(t_.tREFI * 3 + 1_ns), 3);
  dev_.issue(Command::kRef, {}, 0_ns);
  EXPECT_EQ(dev_.refreshes_issued(), 1);
  // ACT during tRFC is flagged.
  const IssueResult r = dev_.issue(Command::kAct, {0, 1, 0}, 100_ns);
  EXPECT_TRUE(r.violations & kTrfc);
}

TEST_F(DeviceTest, ColumnCommandsDuringTrfcAreFlagged) {
  // Regression: RD/WR used to sail through the tRFC window unflagged —
  // only ACT consulted ref_busy_until. Force a row open during the window
  // (itself a violation) and probe both column commands.
  dev_.issue(Command::kRef, {}, 0_ns);
  const IssueResult act = dev_.issue(Command::kAct, {0, 1, 0}, 10_ns);
  EXPECT_TRUE(act.violations & kTrfc);
  const IssueResult rd = dev_.issue(Command::kRead, {0, 1, 0}, 30_ns);
  EXPECT_TRUE(rd.violations & kTrfc);
  const IssueResult wr =
      dev_.issue(Command::kWrite, {0, 1, 1}, 50_ns, pattern(0x12));
  EXPECT_TRUE(wr.violations & kTrfc);
  // After the window closes, the open row serves columns violation-free.
  const IssueResult late = dev_.issue(Command::kRead, {0, 1, 2}, t_.tRFC + 1000_ns);
  EXPECT_EQ(late.violations, kNone);
}

TEST_F(DeviceTest, EarliestLegalColumnRespectsTrfc) {
  dev_.issue(Command::kRef, {}, 0_ns);
  dev_.issue(Command::kAct, {0, 1, 0}, 10_ns);  // Violating open, on purpose.
  EXPECT_GE(dev_.earliest_legal(Command::kRead, {0, 1, 0}), t_.tRFC);
  EXPECT_GE(dev_.earliest_legal(Command::kWrite, {0, 1, 0}), t_.tRFC);
}

TEST_F(DeviceTest, RefreshClosesOpenBanksExplicitly) {
  // Regression: an ACT straddling a refresh. kRef used to flag
  // kRefreshNotIdle but leave the bank open, so the model kept serving the
  // pre-refresh row through a window that destroys it on a real chip.
  dev_.issue(Command::kAct, {3, 77, 0}, 0_ns);
  const IssueResult ref = dev_.issue(Command::kRef, {}, 10_ns);
  EXPECT_TRUE(ref.violations & kRefreshNotIdle);
  EXPECT_FALSE(dev_.open_row(3).has_value()) << "REF must close every bank";
  // Every bank exits the window precharged and immediately activatable:
  // earliest ACT is exactly the end of tRFC, not tRP beyond it.
  EXPECT_EQ(dev_.earliest_legal(Command::kAct, {3, 78, 0}),
            Picoseconds{10000} + t_.tRFC);
  const IssueResult act = dev_.issue(Command::kAct, {3, 78, 0},
                                     Picoseconds{10000} + t_.tRFC);
  EXPECT_EQ(act.violations, kNone);
}

TEST_F(DeviceTest, RefreshResetsTfawWindow) {
  // Four rapid ACTs fill the tFAW window; a refresh's internal activation
  // burst supersedes them, so a (violating) ACT right after the REF must
  // not inherit a stale kTfaw flag.
  Picoseconds t = 0_ns;
  for (std::uint32_t bg = 0; bg < 4; ++bg) {
    dev_.issue(Command::kAct, {bg * 4, 1, 0}, t);
    t += t_.tRRD_S;
  }
  dev_.issue(Command::kPreAll, {}, t + t_.tRAS);
  const Picoseconds ref_at = t + t_.tRAS + t_.tRP;
  dev_.issue(Command::kRef, {}, ref_at);
  const IssueResult r = dev_.issue(Command::kAct, {1, 1, 0}, ref_at + 10_ns);
  EXPECT_TRUE(r.violations & kTrfc) << "still inside the refresh window";
  EXPECT_FALSE(r.violations & kTfaw) << "pre-refresh ACT window leaked";
}

TEST_F(DeviceTest, RefreshClearsPendingRowClonePattern) {
  // ACT -> early PRE primes the RowClone detector; a refresh in between
  // destroys the row buffer, so the post-refresh ACT is a plain activate.
  dev_.issue(Command::kAct, {0, 5, 0}, 0_ns);
  dev_.issue(Command::kPre, {0, 0, 0}, 3_ns);  // Early: gap << tRAS/2.
  dev_.issue(Command::kRef, {}, 6_ns);
  const IssueResult act = dev_.issue(Command::kAct, {0, 9, 0}, 9_ns);
  EXPECT_FALSE(act.rowclone_attempted);
}

TEST_F(DeviceTest, PreAllClosesEverything) {
  dev_.issue(Command::kAct, {0, 1, 0}, 0_ns);
  dev_.issue(Command::kAct, {5, 2, 0}, 10_ns);
  dev_.issue(Command::kPreAll, {}, 100_ns);
  EXPECT_FALSE(dev_.open_row(0).has_value());
  EXPECT_FALSE(dev_.open_row(5).has_value());
}

TEST_F(DeviceTest, BackdoorRoundTrip) {
  const auto p = pattern(0x99);
  dev_.backdoor_write({7, 1234, 56}, p);
  std::array<std::uint8_t, 64> out{};
  dev_.backdoor_read({7, 1234, 56}, out);
  EXPECT_EQ(std::memcmp(out.data(), p.data(), 64), 0);
}

TEST_F(DeviceTest, TimeMustBeMonotonic) {
  dev_.issue(Command::kAct, {0, 1, 0}, 100_ns);
  EXPECT_THROW(dev_.issue(Command::kPre, {0, 0, 0}, 50_ns), ContractViolation);
}

TEST_F(DeviceTest, CommandCountsTracked) {
  dev_.issue(Command::kAct, {0, 1, 0}, 0_ns);
  dev_.issue(Command::kRead, {0, 1, 0}, 20_ns);
  dev_.issue(Command::kRead, {0, 1, 1}, 30_ns);
  EXPECT_EQ(dev_.commands_issued(Command::kAct), 1);
  EXPECT_EQ(dev_.commands_issued(Command::kRead), 2);
  EXPECT_EQ(dev_.commands_issued(Command::kWrite), 0);
}

/// Property sweep: for every command kind, issuing at earliest_legal never
/// reports a timing violation (state violations aside).
class LegalIssueProperty : public ::testing::TestWithParam<TimingParams> {};

TEST_P(LegalIssueProperty, EarliestLegalIsViolationFree) {
  VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  DramDevice dev(Geometry{}, GetParam(), v);
  const std::array<std::uint8_t, 64> zeros{};

  // A mixed command workload across banks, always issued at earliest_legal.
  std::uint32_t violations = 0;
  for (int step = 0; step < 300; ++step) {
    const std::uint32_t bank = static_cast<std::uint32_t>(step * 7 % 16);
    const std::uint32_t row = static_cast<std::uint32_t>(step % 64);
    const std::uint32_t col = static_cast<std::uint32_t>(step % 128);
    const auto open = dev.open_row(bank);
    if (!open) {
      const Picoseconds at = dev.earliest_legal(Command::kAct, {bank, row, 0});
      violations |= dev.issue(Command::kAct, {bank, row, 0}, at).violations;
    } else if (step % 5 == 4) {
      const Picoseconds at = dev.earliest_legal(Command::kPre, {bank, 0, 0});
      violations |= dev.issue(Command::kPre, {bank, 0, 0}, at).violations;
    } else if (step % 2 == 0) {
      const DramAddress a{bank, *open, col};
      const Picoseconds at = dev.earliest_legal(Command::kRead, a);
      violations |= dev.issue(Command::kRead, a, at).violations;
    } else {
      const DramAddress a{bank, *open, col};
      const Picoseconds at = dev.earliest_legal(Command::kWrite, a);
      violations |= dev.issue(Command::kWrite, a, at, zeros).violations;
    }
  }
  EXPECT_EQ(violations, kNone);
}

INSTANTIATE_TEST_SUITE_P(Speeds, LegalIssueProperty,
                         ::testing::Values(ddr4_1333(), ddr4_2400()));

}  // namespace
}  // namespace easydram::dram
