#include <gtest/gtest.h>

#include "timescale/timekeeper.hpp"
#include "timescale/timescale.hpp"

namespace easydram::timescale {
namespace {

using namespace easydram::literals;

TEST(CountersTest, StartAtZero) {
  Counters c;
  EXPECT_EQ(c.global(), 0);
  EXPECT_EQ(c.proc(), 0);
  EXPECT_EQ(c.mc(), 0);
  EXPECT_FALSE(c.critical());
}

TEST(CountersTest, CriticalModeClampsProc) {
  Counters c;
  c.advance_mc(100);
  c.enter_critical();
  EXPECT_EQ(c.advance_proc(250), 100);  // Clamped at mc.
  EXPECT_EQ(c.proc(), 100);
  c.advance_mc(50);
  EXPECT_EQ(c.advance_proc(250), 50);
  EXPECT_EQ(c.proc(), 150);
}

TEST(CountersTest, EnterCriticalSnapsMcUpToProc) {
  Counters c;
  c.advance_proc(500);
  c.enter_critical();
  EXPECT_EQ(c.mc(), 500);
}

TEST(CountersTest, ExitCriticalResynchronises) {
  Counters c;
  c.enter_critical();
  c.advance_mc(300);
  c.exit_critical();
  EXPECT_EQ(c.proc(), 300);
  EXPECT_FALSE(c.critical());
}

TEST(CountersTest, ExitWithoutEnterRejected) {
  Counters c;
  EXPECT_THROW(c.exit_critical(), ContractViolation);
}

TEST(CountersTest, NegativeAdvancesRejected) {
  Counters c;
  EXPECT_THROW(c.advance_proc(-1), ContractViolation);
  EXPECT_THROW(c.advance_mc(-1), ContractViolation);
  EXPECT_THROW(c.advance_global(-1), ContractViolation);
}

TEST(ScalerTest, RealToEmulatedCycles) {
  // 100 MHz FPGA processor emulating 1 GHz: 75 ns of DRAM time is 75
  // emulated cycles.
  Scaler s(DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)});
  EXPECT_EQ(s.real_to_emulated_cycles(75_ns), Cycles{75});
  EXPECT_EQ(s.real_to_emulated_cycles(Picoseconds{1}), Cycles{1});  // Ceil.
  EXPECT_EQ(s.emulated_cycles_to_time(2000), 2_us);
  EXPECT_EQ(s.fpga_time_for_cycles(100), 1_us);
}

class KeeperModes : public ::testing::TestWithParam<SystemMode> {};

TEST_P(KeeperModes, WallAdvancesInEveryMode) {
  TimeKeeper k(GetParam(),
               DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24});
  k.account_smc_cycles(Cycles{100});
  EXPECT_EQ(k.wall(), 1_us);
  k.account_proc_cycles(Cycles{100});
  EXPECT_EQ(k.wall(), 2_us);
  k.account_batch(60_ns);
  EXPECT_EQ(k.wall(), 2_us + 60_ns);
}

INSTANTIATE_TEST_SUITE_P(AllModes, KeeperModes,
                         ::testing::Values(SystemMode::kTimeScaling,
                                           SystemMode::kNoTimeScaling,
                                           SystemMode::kReference));

TEST(TimeKeeperTest, TimeScalingChargesBatchToMc) {
  TimeKeeper k(SystemMode::kTimeScaling,
               DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24});
  k.account_schedule_decision();
  EXPECT_EQ(k.counters().mc(), 24);
  k.account_batch(60_ns);  // 60 emulated cycles at 1 GHz.
  EXPECT_EQ(k.counters().mc(), 84);
  EXPECT_EQ(k.response_release_tag(), 84);
}

TEST(TimeKeeperTest, TimeScalingHidesSmcCycles) {
  TimeKeeper k(SystemMode::kTimeScaling,
               DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24});
  k.account_smc_cycles(Cycles{100'000});  // 1 ms of SMC time...
  EXPECT_EQ(k.counters().mc(), 0);  // ...invisible to the emulated system.
}

TEST(TimeKeeperTest, NoTimeScalingReleaseTagTracksWall) {
  TimeKeeper k(SystemMode::kNoTimeScaling,
               DomainConfig{Frequency::megahertz(50), Frequency::megahertz(50)},
               Frequency::megahertz(100), Cycles{24});
  k.account_smc_cycles(Cycles{100});      // 1 us wall.
  k.account_batch(60_ns);
  // Release tag: wall (1.06 us) at 50 MHz processor cycles = 53 cycles.
  EXPECT_EQ(k.response_release_tag(), 53);
  // The scheduling-latency charge is a no-op without time scaling.
  k.account_schedule_decision();
  EXPECT_EQ(k.counters().mc(), 0);
}

TEST(TimeKeeperTest, VisibilityRules) {
  TimeKeeper k(SystemMode::kTimeScaling,
               DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24});
  // Not critical: everything visible.
  EXPECT_TRUE(k.request_visible(1'000'000, 0_ns));
  k.counters().enter_critical();
  // Critical: visible only once mc catches up (footnote 2).
  EXPECT_FALSE(k.request_visible(1'000'000, 0_ns));
  k.counters().advance_mc(1'000'000);
  EXPECT_TRUE(k.request_visible(1'000'000, 0_ns));
}

TEST(TimeKeeperTest, ReferenceUsesSameVisibilityRuleAsTimeScaling) {
  // A hardware controller at the target clock cannot see a request before
  // its emulated issue time either: identical rule, identical scheduling
  // decisions (the premise of the §6 validation).
  TimeKeeper k(SystemMode::kReference,
               DomainConfig{Frequency::gigahertz(1), Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24});
  k.counters().enter_critical();
  EXPECT_FALSE(k.request_visible(999'999'999, 0_ns));
  k.counters().advance_mc(999'999'999);
  EXPECT_TRUE(k.request_visible(999'999'999, 0_ns));
}

TEST(TimeKeeperTest, SkipIdleAdvancesEmulationPoint) {
  TimeKeeper k(SystemMode::kTimeScaling,
               DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24});
  k.skip_idle_until_proc_cycle(5000);
  EXPECT_EQ(k.counters().mc(), 5000);
  // Never moves backwards.
  k.skip_idle_until_proc_cycle(100);
  EXPECT_EQ(k.counters().mc(), 5000);
}

TEST(TimeKeeperTest, SkipIdleNoTsAdvancesWall) {
  TimeKeeper k(SystemMode::kNoTimeScaling,
               DomainConfig{Frequency::megahertz(50), Frequency::megahertz(50)},
               Frequency::megahertz(100), Cycles{24});
  k.skip_idle_until_proc_cycle(50);  // 50 cycles at 50 MHz = 1 us.
  EXPECT_EQ(k.wall(), 1_us);
}

TEST(TimeKeeperTest, EmulatedNowFollowsCounters) {
  TimeKeeper k(SystemMode::kTimeScaling,
               DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24});
  k.counters().advance_mc(2000);
  EXPECT_EQ(k.emulated_now(), 2_us);  // 2000 cycles at 1 GHz.
}

TEST(TimeKeeperTest, GlobalCounterMirrorsWall) {
  TimeKeeper k(SystemMode::kTimeScaling,
               DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24});
  k.advance_wall(1_us);
  EXPECT_EQ(k.counters().global(), 100);  // 1 us at 100 MHz FPGA clock.
}

}  // namespace
}  // namespace easydram::timescale
