#include <gtest/gtest.h>

#include "cpu/backend.hpp"
#include "cpu/cache.hpp"
#include "cpu/core.hpp"
#include "cpu/presets.hpp"
#include "cpu/trace.hpp"

namespace easydram::cpu {
namespace {

/// Fixed-latency memory backend: responses release `latency` cycles after
/// submission, with optional per-kind tracking for assertions.
class FixedLatencyBackend final : public MemoryBackend {
 public:
  explicit FixedLatencyBackend(std::int64_t latency) : latency_(latency) {}

  std::uint64_t submit_read(std::uint64_t paddr, std::int64_t now) override {
    reads.push_back(paddr);
    return remember(now);
  }
  std::uint64_t submit_write(std::uint64_t paddr, std::int64_t now) override {
    writes.push_back(paddr);
    return remember(now);
  }
  std::uint64_t submit_rowclone(std::uint64_t, std::uint64_t,
                                std::int64_t now) override {
    ++rowclones;
    return remember(now);
  }
  std::uint64_t submit_profile(std::uint64_t, Picoseconds, std::int64_t now) override {
    return remember(now);
  }

  Completion wait(std::uint64_t id) override {
    return Completion{release_.at(id), rowclone_ok};
  }

  std::vector<std::uint64_t> reads;
  std::vector<std::uint64_t> writes;
  int rowclones = 0;
  bool rowclone_ok = true;

 private:
  std::uint64_t remember(std::int64_t now) {
    const std::uint64_t id = next_++;
    release_[id] = now + latency_;
    return id;
  }

  std::int64_t latency_;
  std::uint64_t next_ = 1;
  std::unordered_map<std::uint64_t, std::int64_t> release_;
};

CoreConfig tiny_core() {
  CoreConfig c;
  c.emulated_clock = Frequency::gigahertz(1);
  c.issue_width = 1;
  c.mlp = 2;
  c.store_buffer = 2;
  c.l1_latency = 2;
  c.l2_latency = 10;
  c.fill_to_use = 0;
  return c;
}

CacheHierConfig tiny_caches() {
  CacheHierConfig h;
  h.l1 = CacheConfig{1024, 2, 64};   // 16 lines.
  h.l2 = CacheConfig{4096, 4, 64};   // 64 lines.
  return h;
}

// --------------------------------------------------------------------------
// Cache unit tests
// --------------------------------------------------------------------------

TEST(CacheTest, HitAfterFill) {
  Cache c(CacheConfig{1024, 2, 64});
  EXPECT_FALSE(c.access(0));
  c.fill(0);
  EXPECT_TRUE(c.access(0));
  EXPECT_EQ(c.hits(), 1);
  EXPECT_EQ(c.misses(), 1);
}

TEST(CacheTest, LruEviction) {
  // 2-way, 8 sets: lines 0, 512, 1024 map to set 0 (stride 512 = 8 sets*64).
  Cache c(CacheConfig{1024, 2, 64});
  c.fill(0);
  c.fill(512);
  c.access(0);      // 0 is now MRU; 512 is LRU.
  const FillResult f = c.fill(1024);
  EXPECT_TRUE(f.evicted);
  EXPECT_EQ(f.evicted_line, 512u);
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(512));
}

TEST(CacheTest, DirtyEvictionReported) {
  Cache c(CacheConfig{1024, 2, 64});
  c.fill(0);
  c.mark_dirty(0);
  c.fill(512);
  const FillResult f = c.fill(1024);  // Evicts 0 (LRU).
  EXPECT_TRUE(f.evicted);
  EXPECT_EQ(f.evicted_line, 0u);
  EXPECT_TRUE(f.evicted_dirty);
}

TEST(CacheTest, FlushReportsDirtyAndInvalidates) {
  Cache c(CacheConfig{1024, 2, 64});
  c.fill(64);
  c.mark_dirty(64);
  const Cache::FlushResult f = c.flush(64);
  EXPECT_TRUE(f.was_present);
  EXPECT_TRUE(f.was_dirty);
  EXPECT_FALSE(c.probe(64));
  const Cache::FlushResult f2 = c.flush(64);
  EXPECT_FALSE(f2.was_present);
}

TEST(CacheTest, MisalignedLineRejected) {
  Cache c(CacheConfig{1024, 2, 64});
  EXPECT_THROW(c.access(3), ContractViolation);
}

TEST(CacheTest, MarkDirtyOnAbsentLineRejected) {
  Cache c(CacheConfig{1024, 2, 64});
  EXPECT_THROW(c.mark_dirty(0), ContractViolation);
}

struct CacheGeom {
  std::uint64_t size;
  std::uint32_t ways;
};

class CacheGeometry : public ::testing::TestWithParam<CacheGeom> {};

TEST_P(CacheGeometry, WorkingSetLargerThanCacheAlwaysEvicts) {
  const auto [size, ways] = GetParam();
  Cache c(CacheConfig{size, ways, 64});
  const std::uint64_t lines = size / 64;
  // Touch 2x capacity sequentially: second pass cannot be all hits.
  for (std::uint64_t i = 0; i < 2 * lines; ++i) {
    if (!c.access(i * 64)) c.fill(i * 64);
  }
  std::int64_t hits = 0;
  for (std::uint64_t i = 0; i < 2 * lines; ++i) {
    if (c.access(i * 64)) ++hits;
  }
  EXPECT_LT(hits, static_cast<std::int64_t>(2 * lines));
  // And capacity is respected: at most `lines` lines present.
  std::int64_t present = 0;
  for (std::uint64_t i = 0; i < 2 * lines; ++i) {
    if (c.probe(i * 64)) ++present;
  }
  EXPECT_LE(present, static_cast<std::int64_t>(lines));
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Values(CacheGeom{1024, 2}, CacheGeom{4096, 4},
                                           CacheGeom{32768, 4}, CacheGeom{65536, 8},
                                           CacheGeom{131072, 16}));

// --------------------------------------------------------------------------
// Core timing model
// --------------------------------------------------------------------------

std::vector<TraceRecord> loads(std::initializer_list<std::uint64_t> addrs,
                               Op op = Op::kLoad, std::uint32_t gap = 0) {
  std::vector<TraceRecord> v;
  for (const std::uint64_t a : addrs) {
    TraceRecord r;
    r.op = op;
    r.addr = a;
    r.gap_instructions = gap;
    v.push_back(r);
  }
  return v;
}

TEST(CoreTest, PureComputeRunsAtIssueWidth) {
  CoreConfig cfg = tiny_core();
  cfg.issue_width = 2;
  Core core(cfg, tiny_caches());
  FixedLatencyBackend mem(100);
  std::vector<TraceRecord> t(1, TraceRecord{});
  t[0].op = Op::kMarker;
  t[0].gap_instructions = 999;  // 1000 instructions total.
  VectorTrace trace(std::move(t));
  const RunResult r = core.run(trace, mem);
  EXPECT_EQ(r.instructions, 1000);
  EXPECT_EQ(r.cycles, 500);
}

TEST(CoreTest, DependentMissExposesFullLatency) {
  Core core(tiny_core(), tiny_caches());
  FixedLatencyBackend mem(100);
  VectorTrace trace(loads({0}, Op::kLoadDependent));
  const RunResult r = core.run(trace, mem);
  EXPECT_GE(r.cycles, 100);
  EXPECT_EQ(r.l2_misses, 1);
  EXPECT_EQ(mem.reads.size(), 1u);
}

TEST(CoreTest, IndependentMissesOverlap) {
  CoreConfig cfg = tiny_core();
  cfg.mlp = 4;
  Core overlap(cfg, tiny_caches());
  FixedLatencyBackend mem1(100);
  VectorTrace t1(loads({0, 4096, 8192, 12288}));
  const RunResult r_overlap = overlap.run(t1, mem1);

  Core serial(tiny_core(), tiny_caches());  // Same but dependent loads.
  FixedLatencyBackend mem2(100);
  VectorTrace t2(loads({0, 4096, 8192, 12288}, Op::kLoadDependent));
  const RunResult r_serial = serial.run(t2, mem2);

  EXPECT_LT(r_overlap.cycles, r_serial.cycles / 2);
}

TEST(CoreTest, MlpLimitSerializes) {
  CoreConfig narrow = tiny_core();
  narrow.mlp = 1;
  Core core(narrow, tiny_caches());
  FixedLatencyBackend mem(100);
  VectorTrace trace(loads({0, 4096, 8192, 12288}));
  const RunResult r = core.run(trace, mem);
  // Four misses at MLP 1: at least 3 full latencies are exposed.
  EXPECT_GE(r.cycles, 300);
}

TEST(CoreTest, L1HitsAreCheapForDependentLoads) {
  Core core(tiny_core(), tiny_caches());
  FixedLatencyBackend mem(100);
  // Load the same line repeatedly: one miss, then L1 hits at 2 cycles.
  std::vector<TraceRecord> t = loads({0}, Op::kLoadDependent);
  for (int i = 0; i < 10; ++i) {
    const auto more = loads({0}, Op::kLoadDependent);
    t.insert(t.end(), more.begin(), more.end());
  }
  VectorTrace trace(std::move(t));
  const RunResult r = core.run(trace, mem);
  EXPECT_EQ(r.l1_misses, 1);
  EXPECT_LT(r.cycles, 100 + 11 * 4);
}

TEST(CoreTest, StoresArePostedThroughStoreBuffer) {
  CoreConfig cfg = tiny_core();
  cfg.store_buffer = 8;
  Core core(cfg, tiny_caches());
  FixedLatencyBackend mem(100);
  std::vector<TraceRecord> t;
  for (int i = 0; i < 8; ++i) {
    TraceRecord r;
    r.op = Op::kStore;
    // Distinct sets (stride 64) so tiny-cache conflicts cause no extra
    // writebacks that would occupy store-buffer slots.
    r.addr = static_cast<std::uint64_t>(i) * 64;
    t.push_back(r);
  }
  VectorTrace trace(std::move(t));
  const RunResult r = core.run(trace, mem);
  // All 8 RFOs fit in the store buffer: the core never stalls on them
  // until the final drain.
  EXPECT_LE(r.cycles, 100 + 16);
  EXPECT_EQ(mem.reads.size(), 8u);  // RFOs are reads.
}

TEST(CoreTest, FullStoreBufferStalls) {
  CoreConfig cfg = tiny_core();
  cfg.store_buffer = 1;
  Core core(cfg, tiny_caches());
  FixedLatencyBackend mem(100);
  std::vector<TraceRecord> t;
  for (int i = 0; i < 4; ++i) {
    TraceRecord r;
    r.op = Op::kStore;
    r.addr = static_cast<std::uint64_t>(i) * 4096;
    t.push_back(r);
  }
  VectorTrace trace(std::move(t));
  const RunResult r = core.run(trace, mem);
  EXPECT_GE(r.cycles, 300);
}

TEST(CoreTest, BlockingLoadsConfigSerializesEverything) {
  CoreConfig cfg = tiny_core();
  cfg.blocking_loads = true;
  cfg.mlp = 8;
  Core core(cfg, tiny_caches());
  FixedLatencyBackend mem(50);
  VectorTrace trace(loads({0, 4096, 8192}));
  const RunResult r = core.run(trace, mem);
  EXPECT_GE(r.cycles, 150);
}

TEST(CoreTest, DirtyEvictionsWriteBack) {
  Core core(tiny_core(), tiny_caches());
  FixedLatencyBackend mem(10);
  std::vector<TraceRecord> t;
  // Dirty many distinct lines so L2 (64 lines) must evict dirty victims.
  for (int i = 0; i < 200; ++i) {
    TraceRecord r;
    r.op = Op::kStore;
    r.addr = static_cast<std::uint64_t>(i) * 64;
    t.push_back(r);
  }
  VectorTrace trace(std::move(t));
  core.run(trace, mem);
  EXPECT_GT(mem.writes.size(), 0u);
}

TEST(CoreTest, FlushWritesBackDirtyLine) {
  Core core(tiny_core(), tiny_caches());
  FixedLatencyBackend mem(10);
  std::vector<TraceRecord> t;
  TraceRecord st;
  st.op = Op::kStore;
  st.addr = 0;
  t.push_back(st);
  TraceRecord fl;
  fl.op = Op::kFlush;
  fl.addr = 0;
  t.push_back(fl);
  VectorTrace trace(std::move(t));
  const RunResult r = core.run(trace, mem);
  EXPECT_EQ(r.flushes, 1);
  ASSERT_EQ(mem.writes.size(), 1u);
  EXPECT_EQ(mem.writes[0], 0u);
}

TEST(CoreTest, FlushOfCleanLineDoesNotWriteBack) {
  Core core(tiny_core(), tiny_caches());
  FixedLatencyBackend mem(10);
  std::vector<TraceRecord> t = loads({0});
  TraceRecord fl;
  fl.op = Op::kFlush;
  fl.addr = 0;
  t.push_back(fl);
  VectorTrace trace(std::move(t));
  core.run(trace, mem);
  EXPECT_EQ(mem.writes.size(), 0u);
}

TEST(CoreTest, RowCloneFeedbackReachesTrace) {
  /// Trace source that emits one rowclone then reports the feedback.
  class FeedbackProbe final : public TraceSource {
   public:
    bool next(TraceRecord& out, bool last_rowclone_ok) override {
      if (step_ == 1) saw_ok = last_rowclone_ok;
      if (step_++ > 0) return false;
      out = TraceRecord{};
      out.op = Op::kRowClone;
      out.addr = 0;
      out.addr2 = 8192;
      return true;
    }
    int step_ = 0;
    bool saw_ok = true;
  };

  Core core(tiny_core(), tiny_caches());
  FixedLatencyBackend mem(10);
  mem.rowclone_ok = false;
  FeedbackProbe trace;
  const RunResult r = core.run(trace, mem);
  EXPECT_FALSE(trace.saw_ok);
  EXPECT_EQ(r.rowclones, 1);
  EXPECT_EQ(r.rowclone_fallbacks, 1);
}

TEST(CoreTest, MarkersSnapshotCycles) {
  Core core(tiny_core(), tiny_caches());
  FixedLatencyBackend mem(100);
  std::vector<TraceRecord> t;
  TraceRecord m;
  m.op = Op::kMarker;
  t.push_back(m);
  const auto l = loads({0}, Op::kLoadDependent);
  t.insert(t.end(), l.begin(), l.end());
  t.push_back(m);
  VectorTrace trace(std::move(t));
  const RunResult r = core.run(trace, mem);
  ASSERT_EQ(r.markers.size(), 2u);
  EXPECT_GE(r.markers[1] - r.markers[0], 100);
}

TEST(CoreTest, DrainWaitsForAllOutstanding) {
  CoreConfig cfg = tiny_core();
  cfg.mlp = 4;
  Core core(cfg, tiny_caches());
  FixedLatencyBackend mem(500);
  std::vector<TraceRecord> t = loads({0, 4096});
  TraceRecord d;
  d.op = Op::kDrain;
  t.push_back(d);
  VectorTrace trace(std::move(t));
  const RunResult r = core.run(trace, mem);
  EXPECT_GE(r.cycles, 500);
}

TEST(CoreTest, PresetsAreInternallyConsistent) {
  EXPECT_TRUE(pidram_inorder_core().blocking_loads);
  EXPECT_EQ(pidram_inorder_core().emulated_clock, Frequency::megahertz(50));
  EXPECT_EQ(cortex_a57_core().emulated_clock.hertz, 1'430'000'000);
  EXPECT_GT(jetson_nano_caches().l2.size_bytes, easydram_caches().l2.size_bytes);
}

}  // namespace
}  // namespace easydram::cpu
