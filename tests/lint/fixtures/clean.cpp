// easydram-lint fixture: a file every check must pass untouched.
// Expected findings in this file: 0.

#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

inline std::int64_t ordered_iteration(const std::map<int, std::int64_t>& m) {
  std::int64_t grand_total = 0;
  for (const auto& [key, value] : m) grand_total += value;
  return grand_total;
}

inline std::int64_t integer_reduction(const std::vector<std::int64_t>& xs) {
  std::int64_t running = 0;
  for (const std::int64_t x : xs) running += x;
  return running;
}

}  // namespace fixture
