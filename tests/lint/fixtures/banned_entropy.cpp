// easydram-lint fixture: banned-entropy.
// Expected findings in this file: 3 (std::rand, time(), system_clock).
// The suppressed call and the seeded LCG must stay clean.

#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture {

inline int positive_rand() { return std::rand(); }

inline long positive_time() { return static_cast<long>(time(nullptr)); }

inline long long positive_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

inline int quieted_rand() {
  return std::rand();  // NOLINT-easydram(banned-entropy): fixture exercises
                       // the same-line suppression path.
}

inline unsigned clean_seeded(unsigned state) {
  return state * 1664525u + 1013904223u;
}

}  // namespace fixture
