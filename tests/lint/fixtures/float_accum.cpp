// easydram-lint fixture: float-accumulation-order.
// Expected findings in this file: 2 (a double += and a static_cast<double>
// accumulation). The suppressed and integer reductions must stay clean.

#include <vector>

namespace fixture {

inline double positive_sum(const std::vector<double>& xs) {
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc;
}

inline double positive_cast(const std::vector<int>& xs) {
  double total = 0.0;
  for (const int x : xs) total += static_cast<double>(x);
  return total;
}

inline double quieted_sum(const std::vector<double>& xs) {
  double quiet_acc = 0.0;
  // Fixture exercises the suppression path: pretend the traversal order is
  // structurally fixed.
  // NOLINT-easydram-next-line(float-accumulation-order)
  for (const double x : xs) quiet_acc += x;
  return quiet_acc;
}

inline long clean_integer(const std::vector<int>& xs) {
  long count_sum = 0;
  for (const int x : xs) count_sum += x;
  return count_sum;
}

}  // namespace fixture
