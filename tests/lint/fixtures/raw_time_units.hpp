// easydram-lint fixture: raw-time-units.
// Expected findings in this file: 5 — one field, one raw return, two raw
// parameters, and one line of mixed *_ps / *_cycles arithmetic.
// The suppressed declaration and the unsuffixed counter must stay clean.

#pragma once

#include <cstdint>

namespace fixture {

struct BadTimings {
  std::int64_t window_ps = 0;
};

std::int64_t elapsed_ps();

inline std::int64_t add_latency(std::int64_t base_ps, std::int64_t extra_cycles) {
  return base_ps + extra_cycles;
}

// Fixture exercises the suppression path: pretend this is a legacy FFI
// boundary that cannot take the wrapper types.
// NOLINT-easydram-next-line(raw-time-units)
std::int64_t legacy_window_ps();

struct CleanCounters {
  std::int64_t plain_counter = 0;  // No time suffix: not a time quantity.
};

}  // namespace fixture
