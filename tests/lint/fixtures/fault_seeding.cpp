// easydram-lint fixture: fault-injection-seeding.
// Expected findings in this file: 2 (literal-seeded Xoshiro, counter-seeded
// SplitMix). The hash_mix-derived, seed-named, and suppressed constructions
// must stay clean. The file's name keeps it inside the check's fault-pipeline
// scope (paths under src/ outside dram/faults.* / smc/ecc.* are exempt).

#include <cstdint>

namespace fixture {

struct Xoshiro256ss {
  explicit Xoshiro256ss(std::uint64_t seed) { (void)seed; }
  std::uint64_t next() { return 4; }
};
struct SplitMix64 {
  explicit SplitMix64(std::uint64_t seed) { (void)seed; }
  std::uint64_t next() { return 4; }
};

inline std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) {
  return a * 0x9E3779B97F4A7C15ull ^ b;
}

inline std::uint64_t positive_literal_seeded() {
  Xoshiro256ss rng(0xDEADBEEF);  // Forks the stream from the scenario seed.
  return rng.next();
}

inline std::uint64_t positive_counter_seeded(std::uint64_t read_seq) {
  return SplitMix64(read_seq).next();  // Host-order counter, not a seed.
}

inline std::uint64_t clean_hash_mixed(std::uint64_t seed, std::uint64_t salt) {
  Xoshiro256ss rng(hash_mix(seed, salt));
  return rng.next();
}

inline std::uint64_t clean_derived_seed(std::uint64_t stream_seed) {
  Xoshiro256ss rng(stream_seed);  // Derived keys route through *seed* names.
  return rng.next();
}

inline std::uint64_t quieted(std::uint64_t raw) {
  return SplitMix64(raw).next();  // NOLINT-easydram(fault-injection-seeding):
                                  // fixture exercises the suppression path.
}

}  // namespace fixture
