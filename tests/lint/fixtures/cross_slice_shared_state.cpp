// easydram-lint fixture: cross-slice-shared-state.
// Expected findings in this file: 2 (mutable static counter, thread_local
// scratch). The annotated, atomic, const, and suppressed statics must stay
// clean, as must plain function declarations.

#include <atomic>
#include <cstdint>

namespace fixture {

inline std::int64_t positive_counter() {
  static std::int64_t calls = 0;
  return ++calls;
}

inline int positive_scratch() {
  thread_local int scratch = 0;
  return ++scratch;
}

inline std::int64_t annotated_shared() {
  // SLICE-SHARED(phase barrier): exercises the annotation escape hatch.
  static std::int64_t merged = 0;
  return ++merged;
}

inline std::int64_t clean_atomic() {
  static std::atomic<std::int64_t> hits{0};
  return ++hits;
}

inline int clean_immutable() {
  static const int table[3] = {1, 2, 3};
  static constexpr int bias = 7;
  return table[0] + bias;
}

static int clean_function_decl(int x);
static int clean_function_decl(int x) { return x + 1; }

inline std::int64_t quieted_static() {
  static std::int64_t kept = 0;  // NOLINT-easydram(cross-slice-shared-state): fixture exercises suppression.
  return ++kept;
}

}  // namespace fixture
