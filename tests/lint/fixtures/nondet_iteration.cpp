// easydram-lint fixture: nondeterministic-iteration.
// Expected findings in this file: 2 (one range-for, one explicit begin()).
// The suppressed and lookup-only functions must stay clean.

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

inline int positive_range_for() {
  std::unordered_map<int, int> histogram;
  int total = 0;
  for (const auto& [key, value] : histogram) total += value;
  return total;
}

inline bool positive_iterator() {
  std::unordered_set<std::string> names;
  return names.begin() != names.end();
}

inline int suppressed_range_for() {
  std::unordered_map<int, int> counts;
  int total = 0;
  // Fixture exercises the suppression path: pretend a sorted copy is
  // iterated here.
  // NOLINT-easydram-next-line(nondeterministic-iteration)
  for (const auto& [key, value] : counts) total += value;
  return total;
}

inline bool clean_lookup_only(const std::unordered_map<int, int>& table) {
  return table.find(3) != table.end() && table.count(4) > 0;
}

}  // namespace fixture
