#!/usr/bin/env python3
"""CTest driver for easydram-lint.

Runs the linter over the fixture files in tests/lint/fixtures/ and asserts
exact finding counts per check, exit codes for the clean/finding/error
paths, suppression behaviour, and that the linter's own output is
run-to-run identical. Finally asserts that src/ itself lints clean — the
repo ships with a green determinism contract, not an advisory one.

The token engine is pinned so counts are reproducible with or without
libclang installed.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINT = REPO / "tools" / "lint" / "easydram_lint.py"
FIXTURES = HERE / "fixtures"

# One entry per registered check: every check must have fixture coverage.
EXPECTED = {
    "nondeterministic-iteration": 2,
    "banned-entropy": 3,
    "raw-time-units": 5,
    "float-accumulation-order": 2,
    "fault-injection-seeding": 2,
    "cross-slice-shared-state": 2,
}

failures = []


def check(name, cond, detail=""):
    print(f"[{'ok' if cond else 'FAIL'}] {name}" + ("" if cond else f" — {detail}"))
    if not cond:
        failures.append(name)


def run_lint(*argv):
    return subprocess.run(
        [sys.executable, str(LINT), "--repo", str(REPO), "--engine", "tokens",
         *argv],
        capture_output=True,
        text=True,
    )


def main():
    # --- Fixture scan: exit 1, exact per-check counts -----------------------
    p = run_lint("--format", "json", str(FIXTURES))
    check("fixture scan exits 1", p.returncode == 1,
          f"exit={p.returncode} stderr={p.stderr!r}")
    data = json.loads(p.stdout)
    counts = {}
    for f in data["findings"]:
        counts[f["check"]] = counts.get(f["check"], 0) + 1
    for name, want in sorted(EXPECTED.items()):
        check(f"{name}: exactly {want} finding(s)", counts.get(name, 0) == want,
              f"got {counts.get(name, 0)}")
    check("no unexpected checks fired", set(counts) <= set(EXPECTED), str(counts))
    check("suppressed lines stay quiet",
          not any("quiet" in f["message"] or "legacy" in f["message"]
                  or "suppressed" in f["message"] for f in data["findings"]),
          str(data["findings"]))

    # The linter practices what it preaches: identical output across runs.
    p2 = run_lint("--format", "json", str(FIXTURES))
    check("json output is run-to-run identical", p.stdout == p2.stdout)

    # --- --check narrows the run --------------------------------------------
    p = run_lint("--format", "json", "--check", "banned-entropy", str(FIXTURES))
    data = json.loads(p.stdout)
    check("--check banned-entropy exits 1", p.returncode == 1)
    check("--check banned-entropy finds only its own",
          all(f["check"] == "banned-entropy" for f in data["findings"])
          and len(data["findings"]) == EXPECTED["banned-entropy"],
          str(data["findings"]))

    # --- Clean paths exit 0 --------------------------------------------------
    p = run_lint(str(FIXTURES / "clean.cpp"))
    check("clean fixture exits 0", p.returncode == 0, p.stdout)

    p = run_lint("--list-checks")
    check("--list-checks exits 0", p.returncode == 0)
    for name in EXPECTED:
        check(f"--list-checks mentions {name}", name in p.stdout, p.stdout)

    # --- Error paths exit 2 --------------------------------------------------
    p = run_lint(str(FIXTURES / "no_such_file.cpp"))
    check("missing path exits 2", p.returncode == 2, str(p.returncode))
    p = run_lint("--check", "no-such-check", str(FIXTURES))
    check("unknown check exits 2", p.returncode == 2, str(p.returncode))

    # --- The repo itself ships green -----------------------------------------
    p = run_lint(str(REPO / "src"))
    check("src/ lints clean", p.returncode == 0, p.stdout)

    print(f"\n{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
