#include <gtest/gtest.h>

#include "smc/controller.hpp"
#include "smc/rowclone_alloc.hpp"
#include "sys/system.hpp"
#include "workloads/builder.hpp"

// Coverage for the mechanisms that make the paper's quantitative shapes
// emerge: row-hit batch draining, write streaming, service-vs-background
// SMC cycle attribution, the hardware-MC mode, and the RowClone trigger.

namespace easydram {
namespace {

using namespace easydram::literals;

dram::VariationConfig strong_variation() {
  dram::VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  v.rowclone_pair_success = 1.0;
  return v;
}

sys::SystemConfig ts_config() {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.variation = strong_variation();
  return cfg;
}

// --------------------------------------------------------------------------
// Row-hit batch draining
// --------------------------------------------------------------------------

TEST(BatchDrainTest, SameRowRequestsShareOneActivation) {
  sys::EasyDramSystem sysm(ts_config());
  // Submit 8 reads to consecutive lines of one row before waiting.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sysm.submit_read(static_cast<std::uint64_t>(i) * 64, 10));
  }
  for (const auto id : ids) sysm.wait(id);
  EXPECT_EQ(sysm.device().commands_issued(dram::Command::kAct), 1);
  EXPECT_EQ(sysm.device().commands_issued(dram::Command::kRead), 8);
}

TEST(BatchDrainTest, DrainedBatchIsFasterPerRequest) {
  // 8 same-row reads submitted together complete far sooner than 8 reads
  // issued strictly one at a time.
  sys::EasyDramSystem batched(ts_config());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(batched.submit_read(static_cast<std::uint64_t>(i) * 64, 10));
  }
  std::int64_t batched_done = 0;
  for (const auto id : ids) {
    batched_done = std::max(batched_done, batched.wait(id).release_cycle);
  }

  sys::EasyDramSystem serial(ts_config());
  std::int64_t cursor = 10;
  for (int i = 0; i < 8; ++i) {
    const auto id = serial.submit_read(static_cast<std::uint64_t>(i) * 64, cursor);
    cursor = serial.wait(id).release_cycle;
  }
  EXPECT_LT(batched_done - 10, (cursor - 10) * 2 / 3);
}

TEST(BatchDrainTest, DifferentRowsAreNotDrainedTogether) {
  sys::EasyDramSystem sysm(ts_config());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    // Stride one full row: 4 distinct rows of bank 0 (linear mapping).
    ids.push_back(sysm.submit_read(static_cast<std::uint64_t>(i) * 8192, 10));
  }
  for (const auto id : ids) sysm.wait(id);
  EXPECT_EQ(sysm.device().commands_issued(dram::Command::kAct), 4);
}

TEST(BatchDrainTest, RowBatchLimitRespected) {
  smc::ControllerOptions opt;
  opt.row_batch_limit = 2;
  smc::MemoryController controller(std::move(opt));

  dram::Geometry geo;
  dram::DramDevice device(geo, dram::ddr4_1333(), strong_variation());
  tile::EasyTile tile{tile::TileConfig{}};
  smc::LinearMapper mapper(geo);
  timescale::TimeKeeper keeper(
      timescale::SystemMode::kTimeScaling,
      timescale::DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
      Frequency::megahertz(100), Cycles{0});
  smc::EasyApi api(tile, device, mapper, keeper);

  for (std::uint64_t i = 0; i < 6; ++i) {
    tile::Request r;
    r.id = i + 1;
    r.kind = tile::RequestKind::kRead;
    r.paddr = i * 64;
    tile.incoming().push(r);
  }
  while (tile.outgoing().size() < 6) controller.step(api);
  // 6 same-row reads with limit 2 -> 3 batches -> 1 ACT each (the row
  // stays open, so later batches are pure row hits: still 1 activation).
  EXPECT_EQ(device.commands_issued(dram::Command::kAct), 1);
  EXPECT_GE(api.stats().batches_executed, 3);
}

// --------------------------------------------------------------------------
// Write streaming
// --------------------------------------------------------------------------

TEST(WriteStreamingTest, StreamingStoreSkipsRfo) {
  sys::EasyDramSystem sysm(ts_config());  // A57 preset: streaming on.
  std::vector<cpu::TraceRecord> recs;
  for (int i = 0; i < 32; ++i) {
    cpu::TraceRecord r;
    r.op = cpu::Op::kStoreStream;
    r.addr = static_cast<std::uint64_t>(i) * 64;
    recs.push_back(r);
  }
  cpu::VectorTrace trace(std::move(recs));
  const cpu::RunResult res = sysm.run(trace);
  EXPECT_EQ(res.mem_writes, 32);
  EXPECT_EQ(res.mem_reads, 0);  // No RFOs.
  EXPECT_EQ(sysm.device().commands_issued(dram::Command::kRead), 0);
  EXPECT_EQ(sysm.device().commands_issued(dram::Command::kWrite), 32);
}

TEST(WriteStreamingTest, NonStreamingCoreTreatsItAsPlainStore) {
  cpu::CoreConfig cfg = cpu::cortex_a57_core();
  cfg.write_streaming = false;
  sys::SystemConfig scfg = ts_config();
  scfg.core = cfg;
  sys::EasyDramSystem sysm(scfg);
  std::vector<cpu::TraceRecord> recs;
  for (int i = 0; i < 8; ++i) {
    cpu::TraceRecord r;
    r.op = cpu::Op::kStoreStream;
    r.addr = static_cast<std::uint64_t>(i) * 64;
    recs.push_back(r);
  }
  cpu::VectorTrace trace(std::move(recs));
  const cpu::RunResult res = sysm.run(trace);
  EXPECT_EQ(res.mem_reads, 8);  // Write-allocate RFOs.
}

TEST(WriteStreamingTest, StreamingInvalidatesCachedCopy) {
  cpu::Core core(cpu::cortex_a57_core(), cpu::easydram_caches());
  // Load a line (cached), then stream-store it, then load again: the
  // second load must miss (the streamed line bypassed the cache).
  std::vector<cpu::TraceRecord> recs;
  cpu::TraceRecord load;
  load.op = cpu::Op::kLoad;
  load.addr = 0;
  cpu::TraceRecord stream;
  stream.op = cpu::Op::kStoreStream;
  stream.addr = 0;
  recs = {load, stream, load};
  cpu::VectorTrace trace(std::move(recs));

  class CountingBackend final : public cpu::MemoryBackend {
   public:
    std::uint64_t submit_read(std::uint64_t, std::int64_t now) override {
      ++reads;
      return remember(now);
    }
    std::uint64_t submit_write(std::uint64_t, std::int64_t now) override {
      return remember(now);
    }
    std::uint64_t submit_rowclone(std::uint64_t, std::uint64_t,
                                  std::int64_t now) override {
      return remember(now);
    }
    std::uint64_t submit_profile(std::uint64_t, Picoseconds,
                                 std::int64_t now) override {
      return remember(now);
    }
    cpu::Completion wait(std::uint64_t id) override {
      return cpu::Completion{release.at(id), true};
    }
    std::uint64_t remember(std::int64_t now) {
      release[next] = now + 10;
      return next++;
    }
    int reads = 0;
    std::uint64_t next = 1;
    std::unordered_map<std::uint64_t, std::int64_t> release;
  };

  CountingBackend mem;
  core.run(trace, mem);
  EXPECT_EQ(mem.reads, 2);  // Initial miss + post-stream miss.
}

// --------------------------------------------------------------------------
// Hardware-MC mode and cycle attribution
// --------------------------------------------------------------------------

TEST(HardwareMcTest, ServiceCyclesNotChargedToMc) {
  timescale::TimeKeeper k(
      timescale::SystemMode::kTimeScaling,
      timescale::DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
      Frequency::megahertz(100), Cycles{5}, /*hardware_mc=*/true);
  k.account_mc_service_cycles(Cycles{1000});
  EXPECT_EQ(k.counters().mc(), 0);
  k.account_schedule_decision();
  EXPECT_EQ(k.counters().mc(), 5);  // Only the fixed pipeline latency.
}

TEST(HardwareMcTest, SystemLatencyDropsWithHardwareMc) {
  sys::SystemConfig soft = ts_config();
  sys::SystemConfig hard = ts_config();
  hard.hardware_mc = true;
  hard.mc_sched_latency = Cycles{4};

  sys::EasyDramSystem s1(soft), s2(hard);
  const auto c1 = s1.wait(s1.submit_read(0, 100));
  const auto c2 = s2.wait(s2.submit_read(0, 100));
  EXPECT_LT(c2.release_cycle, c1.release_cycle);
}

TEST(AttributionTest, OverlappedChargeDoesNotDelayRequests) {
  dram::Geometry geo;
  dram::DramDevice device(geo, dram::ddr4_1333(), strong_variation());
  tile::EasyTile tile{tile::TileConfig{}};
  smc::LinearMapper mapper(geo);
  timescale::TimeKeeper keeper(
      timescale::SystemMode::kTimeScaling,
      timescale::DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
      Frequency::megahertz(100), Cycles{0});
  smc::EasyApi api(tile, device, mapper, keeper);

  api.charge_overlapped(Cycles{1000});
  EXPECT_EQ(keeper.counters().mc(), 0);
  api.charge(Cycles{1000});  // Service charge.
  EXPECT_EQ(keeper.counters().mc(), 1000);
}

TEST(AttributionTest, ReceiveSnapsMcToRequestTag) {
  dram::Geometry geo;
  dram::DramDevice device(geo, dram::ddr4_1333(), strong_variation());
  tile::EasyTile tile{tile::TileConfig{}};
  smc::LinearMapper mapper(geo);
  timescale::TimeKeeper keeper(
      timescale::SystemMode::kTimeScaling,
      timescale::DomainConfig{Frequency::megahertz(100), Frequency::gigahertz(1)},
      Frequency::megahertz(100), Cycles{0});
  smc::EasyApi api(tile, device, mapper, keeper);

  tile::Request r;
  r.id = 1;
  r.kind = tile::RequestKind::kRead;
  r.issue_proc_cycle = 5000;
  tile.incoming().push(r);
  api.receive_request();
  EXPECT_GE(keeper.counters().mc(), 5000);
}

// --------------------------------------------------------------------------
// RowClone trigger cost
// --------------------------------------------------------------------------

TEST(RowCloneTriggerTest, TriggerCyclesChargedToCore) {
  sys::SystemConfig with = ts_config();
  with.core.rowclone_trigger_cycles = Cycles{5000};
  sys::SystemConfig without = ts_config();
  without.core.rowclone_trigger_cycles = Cycles{0};

  auto run_one = [](const sys::SystemConfig& cfg) {
    sys::EasyDramSystem sysm(cfg);
    smc::RowClonePairTester tester(sysm.api(), 2);
    tester.test(0, 0, 1, sysm.clone_map());
    sysm.enable_rowclone();
    std::vector<cpu::TraceRecord> recs(1);
    recs[0].op = cpu::Op::kRowClone;
    recs[0].addr = 0;
    recs[0].addr2 = 8192;
    cpu::VectorTrace trace(std::move(recs));
    return sysm.run(trace).cycles;
  };
  EXPECT_GE(run_one(with) - run_one(without), 5000);
}

// --------------------------------------------------------------------------
// Scheduler end-to-end difference
// --------------------------------------------------------------------------

TEST(SchedulerEndToEndTest, FrfcfsBeatsFcfsOnRowConflicts) {
  auto run_policy = [](bool frfcfs) {
    sys::SystemConfig cfg = ts_config();
    cfg.use_frfcfs = frfcfs;
    sys::EasyDramSystem sysm(cfg);
    workloads::TraceBuilder b;
    for (int rep = 0; rep < 500; ++rep) {
      const std::uint64_t col = static_cast<std::uint64_t>(rep % 128) * 64;
      b.load(col);         // Bank 0 row 0.
      b.load(8192 + col);  // Bank 0 row 1 (conflict).
    }
    cpu::VectorTrace trace(b.take());
    return sysm.run(trace).cycles;
  };
  EXPECT_LE(run_policy(true), run_policy(false));
}

}  // namespace
}  // namespace easydram
