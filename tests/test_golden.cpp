// Golden-hash regression test: every deterministic scenario's JSON payload
// is digested and compared against a checked-in hash, turning the
// repository's "bit-identical outputs" claims into an enforced invariant
// instead of a manual diff. fig14_sim_speed is excluded by design — its
// Ramulator column reads the host clock.
//
// When a change *intentionally* alters scenario output, run this suite
// with EASYDRAM_PRINT_GOLDEN=1 to print the new table, verify the diff is
// expected, and update kGolden below.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "cli/scenario.hpp"

namespace easydram::cli {
namespace {

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms for
/// byte-identical input (which is exactly the claim under test).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

struct GoldenEntry {
  const char* scenario;
  std::uint64_t hash;
};

/// Digests of each scenario's run_scenario() JSON under the default
/// RunOptions (seed 0x5AFA2125, iters 1, threads 1) — the same document
/// `easydram_cli --scenario NAME --quiet --out f.json` writes.
constexpr GoldenEntry kGolden[] = {
    {"ablation_batch_limit", 0x5FC0FED93B35E488ull},
    {"ablation_hardware_mc", 0x06B091933B0004DAull},
    {"ablation_rowclone_interleaving", 0xDDF09E5AFE864175ull},
    {"ablation_scheduler", 0x02ED3E8BFA40DBE3ull},
    {"channel_scaling", 0xC91348487B0729C2ull},
    {"ecc_vs_hammer", 0x22933A1122B58EAEull},
    {"fault_sweep", 0xAFBC440AD7F11E97ull},
    {"fig10_rowclone_noflush", 0x90B9DA5F28F443FFull},
    {"fig11_rowclone_clflush", 0x589F05103398A380ull},
    {"fig12_trcd_heatmap", 0x006FB08859876E4Full},
    {"fig13_trcd_speedup", 0xD8AE6DB2AF811381ull},
    {"fig2_breakdown", 0xD070C9DB79A7858Aull},
    {"fig8_latency_profile", 0x0BEC113C08C4FC67ull},
    {"latency_sweep", 0xA62476266726E912ull},
    {"mitigation_overhead", 0x44FF6F4B882509B9ull},
    {"qos_bank_partition", 0xC6CC1895D784AB1Aull},
    {"qos_mitigation", 0xED42D1BBCB2C9035ull},
    {"qos_mixed_tenants", 0xE834B07DB32CA8F6ull},
    {"qos_tenant_scaling", 0xFD316D25A77D8CACull},
    {"quickstart", 0x030BF38B297270D9ull},
    {"raidr_baseline", 0xF41CB380C1C0612Cull},
    {"raidr_misbinning", 0xEB18E22701594F4Eull},
    {"raidr_savings", 0xA27DF139B4AC7DEAull},
    {"raidr_vs_mitigation", 0xC92AB453CEB6CD09ull},
    {"rank_interleaving", 0x6B607F7263283940ull},
    {"rowhammer_baseline", 0x26297656C3C21DA7ull},
    {"rowhammer_graphene", 0x58C1ADC7E933FD8Cull},
    {"rowhammer_para", 0x97C61FB1735CA39Aull},
    {"scrub_raidr", 0xD4EAED7D14A4DB4Eull},
    {"stream_sweep", 0x59D22BAE68461BAFull},
    {"table1_platforms", 0x0F61635A17B1D40Cull},
    {"validation_timescale", 0x76793482AB8533D5ull},
};

std::uint64_t scenario_hash(const char* name) {
  const Scenario* s = ScenarioRegistry::instance().find(name);
  EXPECT_NE(s, nullptr) << name;
  if (s == nullptr) return 0;
  RunOptions opts;
  opts.verbose = false;
  return fnv1a(run_scenario(*s, opts).dump_string());
}

TEST(GoldenHashTest, DeterministicScenariosMatchCheckedInDigests) {
  const bool print = std::getenv("EASYDRAM_PRINT_GOLDEN") != nullptr;
  bool all_match = true;
  for (const GoldenEntry& g : kGolden) {
    const std::uint64_t h = scenario_hash(g.scenario);
    if (print) {
      printf("    {\"%s\", 0x%016llXull},\n", g.scenario,
             static_cast<unsigned long long>(h));
      all_match = all_match && h == g.hash;
      continue;
    }
    EXPECT_EQ(h, g.hash) << g.scenario
                         << ": scenario JSON changed. If intentional, rerun "
                            "with EASYDRAM_PRINT_GOLDEN=1 and update kGolden.";
  }
  if (print) {
    EXPECT_TRUE(all_match) << "printed table differs from kGolden";
  }
}

/// Cross-thread determinism sweep: every multi-channel deterministic
/// scenario must emit a bit-identical `results` payload whichever way the
/// host budget is split — `--threads` values that auto-split into sweep +
/// pump workers, and forced per-system pump worker counts. Only the
/// `results` member is compared because the envelope records the requested
/// `threads` value verbatim.
TEST(GoldenHashTest, MultiChannelScenariosThreadCountInvariant) {
  const char* kMultiChannel[] = {"channel_scaling", "rank_interleaving"};
  for (const char* name : kMultiChannel) {
    const Scenario* s = ScenarioRegistry::instance().find(name);
    ASSERT_NE(s, nullptr) << name;
    RunOptions base;
    base.verbose = false;
    base.channels = 8;  // Widest sweep point: 8-channel systems.
    const std::string serial =
        run_scenario(*s, base)["results"].dump_string();
    for (const int threads : {2, 4}) {
      RunOptions opts = base;
      opts.threads = threads;
      EXPECT_EQ(run_scenario(*s, opts)["results"].dump_string(), serial)
          << name << " diverged at --threads " << threads;
    }
    for (const unsigned pump : {2u, 4u}) {
      RunOptions opts = base;
      opts.pump_workers = pump;
      EXPECT_EQ(run_scenario(*s, opts)["results"].dump_string(), serial)
          << name << " diverged at --pump-workers " << pump;
    }
  }
}

/// Stream identity rides through the request table, completion ring, and
/// per-stream latency histograms — every one a candidate for
/// worker-count-dependent ordering. The QoS scenarios must stay
/// bit-identical however the host budget is split, like everything else.
TEST(GoldenHashTest, QosScenariosThreadCountInvariant) {
  const char* kQos[] = {"qos_tenant_scaling", "qos_bank_partition"};
  for (const char* name : kQos) {
    const Scenario* s = ScenarioRegistry::instance().find(name);
    ASSERT_NE(s, nullptr) << name;
    RunOptions base;
    base.verbose = false;
    const std::string serial =
        run_scenario(*s, base)["results"].dump_string();
    {
      RunOptions opts = base;
      opts.threads = 4;
      EXPECT_EQ(run_scenario(*s, opts)["results"].dump_string(), serial)
          << name << " diverged at --threads 4";
    }
    for (const unsigned pump : {1u, 4u}) {
      RunOptions opts = base;
      opts.pump_workers = pump;
      EXPECT_EQ(run_scenario(*s, opts)["results"].dump_string(), serial)
          << name << " diverged at --pump-workers " << pump;
    }
  }
}

/// The sweep scenarios shard iters x (kernel x size) tasks across the
/// sweep pool and run each simulated system under a pump-worker budget —
/// both layers of the parallel core. Their bandwidth/latency curves (and
/// so the monotonicity booleans the curves feed) must be bit-identical
/// however the host budget is split.
TEST(GoldenHashTest, StreamSweepScenariosThreadCountInvariant) {
  const char* kSweeps[] = {"stream_sweep", "latency_sweep"};
  for (const char* name : kSweeps) {
    const Scenario* s = ScenarioRegistry::instance().find(name);
    ASSERT_NE(s, nullptr) << name;
    RunOptions base;
    base.verbose = false;
    const std::string serial =
        run_scenario(*s, base)["results"].dump_string();
    {
      RunOptions opts = base;
      opts.threads = 4;
      EXPECT_EQ(run_scenario(*s, opts)["results"].dump_string(), serial)
          << name << " diverged at --threads 4";
    }
    for (const unsigned pump : {1u, 4u}) {
      RunOptions opts = base;
      opts.pump_workers = pump;
      EXPECT_EQ(run_scenario(*s, opts)["results"].dump_string(), serial)
          << name << " diverged at --pump-workers " << pump;
    }
  }
}

/// The registry growing a new scenario should force a conscious decision
/// about its determinism (add it to kGolden or document why not).
TEST(GoldenHashTest, EveryScenarioIsClassified) {
  std::size_t classified = std::size(kGolden) + 1;  // +1: fig14_sim_speed.
  EXPECT_EQ(ScenarioRegistry::instance().all().size(), classified)
      << "new scenario registered: classify it in test_golden.cpp";
}

}  // namespace
}  // namespace easydram::cli
