#include <gtest/gtest.h>

#include <vector>

#include "smc/easyapi.hpp"
#include "smc/mitigation/graphene.hpp"
#include "smc/refresh_policy.hpp"
#include "smc/retention_profiler.hpp"
#include "sys/system.hpp"
#include "tile/tile.hpp"
#include "timescale/timekeeper.hpp"

// Retention-aware refresh tests: the per-row retention model, the stripe
// profiler/binning, the RAIDR skip schedule, the device's refresh-slot
// bookkeeping under skipped REFs (round-robin alignment, hammer
// victim-counter resets, per-rank independence), the EasyApi pacing loop
// with a policy installed, and the retention-violation ground truth.

namespace easydram {
namespace {

using namespace easydram::literals;

dram::Geometry small_window_geometry(std::uint32_t ranks = 1) {
  dram::Geometry geo;
  geo.ranks_per_channel = ranks;
  geo.refresh_window_refs = 64;  // Stripe = 512 rows of every bank.
  return geo;
}

dram::VariationConfig compressed_retention(std::uint64_t seed = 0x5AFA2125) {
  dram::VariationConfig v;
  v.seed = seed;
  // Match the time-compressed 64-slot window (~499 us round at tREFI).
  v.retention_base = 560_us;
  v.retention_p_weakest = 1e-5;
  v.retention_p_weak = 4e-5;
  return v;
}

// --------------------------------------------------------------------------
// Retention model
// --------------------------------------------------------------------------

TEST(RetentionModel, DeterministicAndBounded) {
  const dram::Geometry geo;
  const dram::VariationConfig cfg;
  const dram::VariationModel a(geo, cfg), b(geo, cfg);
  for (std::uint32_t row = 0; row < 2000; ++row) {
    const Picoseconds r = a.row_retention(3, row);
    EXPECT_EQ(r, b.row_retention(3, row));
    EXPECT_GE(r, cfg.retention_base);
    EXPECT_LT(r, cfg.retention_base * 16);
  }
}

TEST(RetentionModel, ClassFractionsTrackConfiguredProbabilities) {
  const dram::Geometry geo;
  dram::VariationConfig cfg;
  cfg.retention_p_weakest = 0.01;
  cfg.retention_p_weak = 0.05;
  const dram::VariationModel m(geo, cfg);
  std::int64_t weakest = 0, weak = 0, n = 0;
  for (std::uint32_t bank = 0; bank < 4; ++bank) {
    for (std::uint32_t row = 0; row < 8192; ++row, ++n) {
      const Picoseconds r = m.row_retention(bank, row);
      if (r < cfg.retention_base * 2) {
        ++weakest;
      } else if (r < cfg.retention_base * 4) {
        ++weak;
      }
    }
  }
  const double f1 = static_cast<double>(weakest) / static_cast<double>(n);
  const double f2 = static_cast<double>(weak) / static_cast<double>(n);
  EXPECT_NEAR(f1, 0.01, 0.003);
  EXPECT_NEAR(f2, 0.05, 0.007);
}

TEST(RetentionModel, SeedChangesTheField) {
  const dram::Geometry geo;
  dram::VariationConfig a_cfg, b_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  const dram::VariationModel a(geo, a_cfg), b(geo, b_cfg);
  int diffs = 0;
  for (std::uint32_t row = 0; row < 512; ++row) {
    diffs += a.row_retention(0, row) != b.row_retention(0, row);
  }
  EXPECT_GT(diffs, 400);
}

// --------------------------------------------------------------------------
// Profiler and binning
// --------------------------------------------------------------------------

TEST(RetentionProfiler, ExhaustiveBinningNeverExceedsRetention) {
  const dram::Geometry geo = small_window_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), compressed_retention());
  smc::RaidrBinStats stats{};
  const smc::RaidrBinning b =
      smc::profile_retention_bins(dev, {}, &stats);
  ASSERT_EQ(b.window_refs, geo.refresh_window_refs);
  ASSERT_EQ(b.ranks, 1u);
  ASSERT_EQ(b.multipliers.size(), geo.refresh_window_refs);
  EXPECT_EQ(stats.stripes_total, 64);
  EXPECT_EQ(stats.stripes_x1 + stats.stripes_x2 + stats.stripes_x4, 64);
  EXPECT_EQ(stats.rows_profiled,
            static_cast<std::int64_t>(geo.refresh_window_refs) *
                geo.refresh_stripe_rows() * geo.num_banks());

  const Picoseconds window{dev.timing().tREFI.count *
                           static_cast<std::int64_t>(geo.refresh_window_refs)};
  dev.set_retention_tracking(true);  // Enables stripe_min_retention.
  for (std::uint32_t s = 0; s < geo.refresh_window_refs; ++s) {
    // The safety contract: every stripe's refresh interval fits its
    // weakest row's retention.
    EXPECT_LE(window.count * b.multiplier(0, s),
              dev.stripe_min_retention(0, s).count)
        << "stripe " << s;
  }
}

TEST(RetentionProfiler, SparseSamplingOnlyEverOverbins) {
  const dram::Geometry geo = small_window_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), compressed_retention());
  const smc::RaidrBinning exact = smc::profile_retention_bins(dev, {});
  smc::RetentionProfilerOptions sparse;
  sparse.sample_stride = 64;
  const smc::RaidrBinning coarse = smc::profile_retention_bins(dev, sparse);
  bool any_overbinned = false;
  for (std::uint32_t s = 0; s < geo.refresh_window_refs; ++s) {
    // Sampling fewer rows can only miss weak rows, never invent them.
    EXPECT_GE(coarse.multiplier(0, s), exact.multiplier(0, s));
    any_overbinned = any_overbinned || coarse.multiplier(0, s) > exact.multiplier(0, s);
  }
  EXPECT_TRUE(any_overbinned);  // This seed has weak stripes to miss.
}

TEST(RetentionProfiler, GuardBandPushesBoundaryStripesDown) {
  const dram::Geometry geo = small_window_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), compressed_retention());
  const smc::RaidrBinStats plain = summarize_binning(
      smc::profile_retention_bins(dev, {}));
  smc::RetentionProfilerOptions guarded;
  guarded.guard_band = 300_us;  // More than half a compressed window.
  const smc::RaidrBinStats safe = summarize_binning(
      smc::profile_retention_bins(dev, guarded));
  EXPECT_GE(safe.issue_fraction, plain.issue_fraction);
  EXPECT_GE(safe.stripes_x1 + safe.stripes_x2,
            plain.stripes_x1 + plain.stripes_x2);
}

TEST(RaidrPolicy, ScheduleIssuesEachStripeOncePerItsInterval) {
  smc::RaidrBinning b;
  b.window_refs = 8;
  b.ranks = 1;
  b.multipliers = {1, 2, 4, 4, 1, 2, 4, 2};
  smc::RaidrRefreshPolicy policy(b);
  for (std::uint32_t stripe = 0; stripe < b.window_refs; ++stripe) {
    const std::uint32_t m = b.multiplier(0, stripe);
    int issued = 0;
    std::int64_t first_round = -1, last_round = -1;
    for (std::int64_t round = 0; round < 16; ++round) {
      if (policy.should_issue(0, round * b.window_refs + stripe)) {
        ++issued;
        if (first_round < 0) {
          first_round = round;
        } else {
          // Exactly m rounds between consecutive REFs of one stripe.
          EXPECT_EQ(round - last_round, m) << "stripe " << stripe;
        }
        last_round = round;
      }
    }
    EXPECT_EQ(issued, 16 / static_cast<int>(m));
    // Phase-spread start: the first REF lands in round stripe mod m, i.e.
    // within the first m rounds — the power-on retention budget holds.
    EXPECT_EQ(first_round, stripe % m) << "stripe " << stripe;
  }
}

TEST(RaidrPolicy, PhaseSpreadSkipsFromRoundZero) {
  smc::RaidrBinning b;
  b.window_refs = 64;
  b.ranks = 1;
  b.multipliers.assign(64, 4);  // All-strong chip.
  smc::RaidrRefreshPolicy policy(b);
  int issued = 0;
  for (std::int64_t slot = 0; slot < 64; ++slot) {
    issued += policy.should_issue(0, slot);
  }
  EXPECT_EQ(issued, 16);  // Steady-state rate already in round 0.
}

// --------------------------------------------------------------------------
// Device slot bookkeeping under skipped REFs
// --------------------------------------------------------------------------

/// Issues one REF to `rank` at the earliest legal time.
void issue_ref(dram::DramDevice& dev, std::uint32_t rank = 0) {
  dram::DramAddress a{0, 0, 0};
  a.rank = rank;
  dev.issue(dram::Command::kRef, a, dev.earliest_legal(dram::Command::kRef, a));
}

TEST(DeviceRefreshSlots, SkipAdvancesSlotsButNotIssued) {
  dram::DramDevice dev(dram::Geometry{}, dram::ddr4_1333(),
                       dram::VariationConfig{});
  EXPECT_EQ(dev.refresh_slots(), 0);
  dev.skip_refresh();
  dev.skip_refresh();
  EXPECT_EQ(dev.refresh_slots(), 2);
  EXPECT_EQ(dev.refreshes_issued(), 0);
  issue_ref(dev);
  EXPECT_EQ(dev.refresh_slots(), 3);
  EXPECT_EQ(dev.refreshes_issued(), 1);
}

TEST(DeviceRefreshSlots, SlotsArePerRank) {
  dram::Geometry geo;
  geo.ranks_per_channel = 2;
  dram::DramDevice dev(geo, dram::ddr4_1333(), dram::VariationConfig{});
  dev.skip_refresh(1);
  issue_ref(dev, 1);
  EXPECT_EQ(dev.refresh_slots(0), 0);
  EXPECT_EQ(dev.refreshes_issued(0), 0);
  EXPECT_EQ(dev.refresh_slots(1), 2);
  EXPECT_EQ(dev.refreshes_issued(1), 1);
}

/// Hammer a victim's neighbors so the victim accumulates a disturbance
/// count. `row` must be subarray-interior.
void disturb(dram::DramDevice& dev, std::uint32_t row, int times,
             std::uint32_t rank = 0) {
  for (int i = 0; i < times; ++i) {
    for (const std::uint32_t agg : {row - 1, row + 1}) {
      dram::DramAddress a{0, agg, 0};
      a.rank = rank;
      dev.issue(dram::Command::kAct, a,
                dev.earliest_legal(dram::Command::kAct, a));
      dev.issue(dram::Command::kPre, a,
                dev.earliest_legal(dram::Command::kPre, a));
    }
  }
}

TEST(DeviceRefreshSlots, SkippedStripeKeepsVictimCounters) {
  const dram::Geometry geo = small_window_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), dram::VariationConfig{});
  dev.set_hammer_tracking(true);
  // Victim row 1030 sits in stripe 1030/512 = 2 of the 64-slot window.
  const std::uint32_t victim = 1030;
  const std::uint32_t stripe = geo.refresh_stripe_of_row(victim);
  ASSERT_EQ(stripe, 2u);
  disturb(dev, victim, 5);
  ASSERT_EQ(dev.hammer_count(0, victim), 10);

  // Skip the victim's slot: REFs for slots 0 and 1 issue, slot 2 skips,
  // slot 3 issues. The victim's counter must survive.
  issue_ref(dev);
  issue_ref(dev);
  dev.skip_refresh();
  issue_ref(dev);
  EXPECT_EQ(dev.hammer_count(0, victim), 10);

  // Next round (the window has 64 slots): walk slots up to the victim's
  // stripe and issue it this time — the counter resets, proving the
  // round-robin stayed aligned through the earlier skip.
  while (dev.refresh_slots() % geo.refresh_window_refs != stripe) {
    dev.skip_refresh();
  }
  issue_ref(dev);
  EXPECT_EQ(dev.hammer_count(0, victim), 0);
}

TEST(DeviceRefreshSlots, SkipOnOneRankLeavesOtherRanksAligned) {
  const dram::Geometry geo = small_window_geometry(/*ranks=*/2);
  dram::DramDevice dev(geo, dram::ddr4_1333(), dram::VariationConfig{});
  dev.set_hammer_tracking(true);
  const std::uint32_t victim = 700;  // Stripe 1.
  ASSERT_EQ(geo.refresh_stripe_of_row(victim), 1u);
  disturb(dev, victim, 3, /*rank=*/0);
  disturb(dev, victim, 3, /*rank=*/1);

  // Rank 0 skips slot 0 then issues slot 1 (the victim's stripe): reset.
  dev.skip_refresh(0);
  issue_ref(dev, 0);
  // Rank 1 issues slot 0 then skips slot 1: its victim keeps its count.
  issue_ref(dev, 1);
  dev.skip_refresh(1);

  EXPECT_EQ(dev.hammer_count(0, victim, 0), 0);
  EXPECT_EQ(dev.hammer_count(0, victim, 1), 6);
}

// --------------------------------------------------------------------------
// Retention-violation ground truth
// --------------------------------------------------------------------------

TEST(RetentionTracking, AllRowsScheduleNeverViolates) {
  const dram::Geometry geo = small_window_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), compressed_retention());
  dev.set_retention_tracking(true);
  for (int slot = 0; slot < 3 * 64; ++slot) issue_ref(dev);
  EXPECT_EQ(dev.retention_violations(), 0);
  EXPECT_EQ(dev.max_retention_overshoot().count, 0);
}

TEST(RetentionTracking, OverSkippedStripeViolatesByTheSlotGap) {
  const dram::Geometry geo = small_window_geometry();
  dram::DramDevice dev(geo, dram::ddr4_1333(), compressed_retention());
  dev.set_retention_tracking(true);
  const dram::TimingParams t = dram::ddr4_1333();
  // Skip every slot for 40 rounds, then issue stripe 0's REF: the gap is
  // 41 windows (the power-on convention grants one), far beyond any
  // modeled retention (< 16 x 560 us ~ 18 windows).
  for (int i = 0; i < 40 * 64; ++i) dev.skip_refresh();
  issue_ref(dev);
  EXPECT_EQ(dev.retention_violations(), 1);
  const Picoseconds gap{41 * 64 * t.tREFI.count};
  const Picoseconds overshoot = dev.max_retention_overshoot();
  EXPECT_GT(overshoot.count, 0);
  EXPECT_EQ(overshoot, gap - dev.stripe_min_retention(0, 0));
}

// --------------------------------------------------------------------------
// EasyApi pacing with a policy installed
// --------------------------------------------------------------------------

/// Standalone SMC harness (mirrors tests/test_memsys.cpp) with a
/// configurable refresh policy.
struct Harness {
  explicit Harness(const dram::Geometry& g,
                   const dram::VariationConfig& v = dram::VariationConfig{})
      : geo(g),
        device(geo, dram::ddr4_1333(), v),
        tile(tile::TileConfig{}),
        mapper(geo),
        keeper(timescale::SystemMode::kTimeScaling,
               timescale::DomainConfig{Frequency::megahertz(100),
                                       Frequency::gigahertz(1)},
               Frequency::megahertz(100), Cycles{24}),
        api(tile, device, mapper, keeper, 0) {}

  void advance_emulated_past_slots(std::int64_t slots) {
    const dram::TimingParams t = dram::ddr4_1333();
    const std::int64_t target_ns =
        (slots * t.tREFI.count + t.tRFC.count + 1000) / 1000;
    const std::int64_t now = keeper.counters().mc();
    ASSERT_GE(target_ns, now);
    keeper.counters().advance_mc(target_ns - now);
  }

  dram::Geometry geo;
  dram::DramDevice device;
  tile::EasyTile tile;
  smc::LinearMapper mapper;
  timescale::TimeKeeper keeper;
  smc::EasyApi api;
};

class SkipEverything final : public smc::RefreshPolicy {
 public:
  bool should_issue(std::uint32_t, std::int64_t) override { return false; }
  std::string_view name() const override { return "skip_everything"; }
};

class SkipOddSlots final : public smc::RefreshPolicy {
 public:
  bool should_issue(std::uint32_t, std::int64_t slot) override {
    return slot % 2 == 0;
  }
  std::string_view name() const override { return "skip_odd"; }
};

TEST(ApiRefreshPacing, SkippedSlotsConsumePacingWithoutIssuing) {
  Harness h(dram::Geometry{});
  SkipEverything policy;
  h.api.set_refresh_policy(&policy);
  h.advance_emulated_past_slots(5);
  h.api.refresh_if_due();
  EXPECT_EQ(h.device.refresh_slots(), 5);
  EXPECT_EQ(h.device.refreshes_issued(), 0);
  EXPECT_EQ(h.api.stats().refreshes_issued, 0);
  EXPECT_EQ(h.api.stats().refreshes_skipped, 5);
  EXPECT_EQ(h.api.stats().dram_busy.count, 0);  // Skips charge nothing.

  // Once caught up, calling again owes nothing.
  h.api.refresh_if_due();
  EXPECT_EQ(h.api.stats().refreshes_skipped, 5);
}

TEST(ApiRefreshPacing, MixedScheduleSplitsSlotsExactly) {
  Harness h(dram::Geometry{});
  SkipOddSlots policy;
  h.api.set_refresh_policy(&policy);
  h.advance_emulated_past_slots(8);
  h.api.refresh_if_due();
  EXPECT_EQ(h.device.refresh_slots(), 8);
  EXPECT_EQ(h.device.refreshes_issued(), 4);
  EXPECT_EQ(h.api.stats().refreshes_issued, 4);
  EXPECT_EQ(h.api.stats().refreshes_skipped, 4);
}

TEST(ApiRefreshPacing, PolicyConsultedPerRank) {
  dram::Geometry geo;
  geo.ranks_per_channel = 2;
  Harness h(geo);
  // Rank 1 skips everything, rank 0 issues everything.
  class Rank1Skips final : public smc::RefreshPolicy {
   public:
    bool should_issue(std::uint32_t rank, std::int64_t) override {
      return rank == 0;
    }
    std::string_view name() const override { return "rank1_skips"; }
  } policy;
  h.api.set_refresh_policy(&policy);
  h.advance_emulated_past_slots(3);
  h.api.refresh_if_due();
  EXPECT_EQ(h.device.refreshes_issued(0), 3);
  EXPECT_EQ(h.device.refreshes_issued(1), 0);
  EXPECT_EQ(h.device.refresh_slots(1), 3);
}

TEST(ApiRefreshPacing, NullAndAllRowsPoliciesMatchBitForBit) {
  Harness null_h(dram::Geometry{});
  Harness all_h(dram::Geometry{});
  smc::AllRowsRefreshPolicy all_rows;
  all_h.api.set_refresh_policy(&all_rows);
  null_h.advance_emulated_past_slots(7);
  all_h.advance_emulated_past_slots(7);
  null_h.api.refresh_if_due();
  all_h.api.refresh_if_due();
  EXPECT_EQ(null_h.device.refreshes_issued(), all_h.device.refreshes_issued());
  EXPECT_EQ(null_h.device.refresh_slots(), all_h.device.refresh_slots());
  EXPECT_EQ(null_h.api.stats().refreshes_skipped, 0);
  EXPECT_EQ(all_h.api.stats().refreshes_skipped, 0);
  EXPECT_EQ(null_h.keeper.wall(), all_h.keeper.wall());
}

// --------------------------------------------------------------------------
// Mitigator interplay: Graphene's retention window under skipped slots
// --------------------------------------------------------------------------

TEST(GrapheneWindow, SkippedSlotsCountTowardTheWindowReset) {
  // 64-slot window geometry: the window must follow the geometry, and a
  // skipping policy's slots must advance it like issued REFs do.
  const dram::Geometry geo = small_window_geometry();
  smc::mitigation::MitigationConfig cfg;
  cfg.kind = smc::mitigation::MitigationKind::kGraphene;
  smc::mitigation::GrapheneMitigator g(cfg, geo);

  std::vector<dram::DramAddress> victims;
  const dram::DramAddress aggressor{0, 1030, 0};
  g.on_activate(aggressor, victims);
  ASSERT_GT(g.tracked_count(0, 1030), 0);

  // A full window minus one slot — mixed issued and skipped — must not
  // reset; the slot completing the window must.
  for (std::uint32_t slot = 0; slot + 1 < geo.refresh_window_refs; ++slot) {
    if (slot % 3 == 0) {
      g.on_refresh(0);
    } else {
      g.on_refresh_skipped(0);
    }
  }
  EXPECT_GT(g.tracked_count(0, 1030), 0);
  EXPECT_EQ(g.stats().window_resets, 0);
  g.on_refresh_skipped(0);
  EXPECT_EQ(g.tracked_count(0, 1030), 0);
  EXPECT_EQ(g.stats().window_resets, 1);
}

// --------------------------------------------------------------------------
// Full system
// --------------------------------------------------------------------------

cpu::VectorTrace stress_trace(std::size_t records) {
  std::vector<cpu::TraceRecord> t;
  for (std::size_t i = 0; i < records; ++i) {
    cpu::TraceRecord r;
    r.op = cpu::Op::kLoadDependent;
    r.gap_instructions = 20000;
    r.addr = static_cast<std::uint64_t>(i) * 8192;
    t.push_back(r);
  }
  return cpu::VectorTrace(std::move(t));
}

TEST(SystemRaidr, SkipsRefreshesAndBalancesTheLedger) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  cfg.refresh = smc::RefreshKind::kRaidr;
  sys::EasyDramSystem sysm(cfg);
  cpu::VectorTrace trace = stress_trace(64);
  sysm.run(trace);
  const smc::ApiStats s = sysm.smc_stats();
  EXPECT_GT(s.refreshes_issued, 0);
  EXPECT_GT(s.refreshes_skipped, 0);
  // The ledger: every consumed slot was either issued or skipped.
  EXPECT_EQ(s.refreshes_issued + s.refreshes_skipped,
            sysm.refresh_slots_consumed());
  // The profiled binning is dominated by the strong bin on the default
  // chip, so most slots skip.
  EXPECT_GT(s.refreshes_skipped, s.refreshes_issued);
  const smc::RaidrBinStats bins = sysm.refresh_bin_stats();
  EXPECT_EQ(bins.stripes_total, 8192);
  EXPECT_GT(bins.stripes_x4, 6000);
  EXPECT_LT(bins.issue_fraction, 0.5);
}

TEST(SystemRaidr, AllRowsConfigSkipsNothing) {
  sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
  sys::EasyDramSystem sysm(cfg);
  cpu::VectorTrace trace = stress_trace(32);
  sysm.run(trace);
  const smc::ApiStats s = sysm.smc_stats();
  EXPECT_GT(s.refreshes_issued, 0);
  EXPECT_EQ(s.refreshes_skipped, 0);
  EXPECT_EQ(s.refreshes_issued, sysm.refresh_slots_consumed());
  EXPECT_EQ(sysm.refresh_bin_stats().stripes_total, 0);
}

}  // namespace
}  // namespace easydram
