// The v2 measurement contract, tested at both layers: the RepStats
// reduction every perf bench goes through (cli/measure.hpp) and the
// tools/check_bench.py gate that thresholds the resulting document in CI.
// The gate tests build fixture documents with the same Json writer the
// harness uses and drive the real script through python3, asserting its
// exit-code contract (0 pass / 1 gate failure / 2 unusable input).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "cli/json.hpp"
#include "cli/measure.hpp"
#include "common/stats.hpp"

namespace easydram::cli {
namespace {

// --------------------------------------------------------------------------
// RepStats / reduce_reps
// --------------------------------------------------------------------------

TEST(RepStatsTest, WarmupSamplesAreDiscardedFromEveryStatistic) {
  // A slow cold first rep must not reach best/median/mean.
  const std::vector<double> samples = {100.0, 2.0, 4.0, 6.0};
  const RepStats r = reduce_reps(samples, /*warmup=*/1);
  EXPECT_EQ(r.warmup, 1);
  EXPECT_EQ(r.measured, 3);
  EXPECT_DOUBLE_EQ(r.best, 2.0);
  EXPECT_DOUBLE_EQ(r.median, 4.0);
  EXPECT_DOUBLE_EQ(r.mean, 4.0);
}

TEST(RepStatsTest, KnownFiveSampleSeries) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  const RepStats r = reduce_reps(samples, /*warmup=*/0);
  EXPECT_DOUBLE_EQ(r.best, 1.0);
  EXPECT_DOUBLE_EQ(r.median, 3.0);
  EXPECT_DOUBLE_EQ(r.mean, 3.0);
  // Linear-interpolated p95 over 5 samples: index 0.95*4 = 3.8.
  EXPECT_DOUBLE_EQ(r.p95, 4.8);
  // Sample stddev (n-1) of 1..5 is sqrt(2.5).
  EXPECT_NEAR(r.stddev, 1.5811388300841898, 1e-12);
  EXPECT_NEAR(r.cv, r.stddev / 3.0, 1e-12);
}

TEST(RepStatsTest, SingleMeasuredRepHasZeroSpread) {
  const std::vector<double> samples = {7.0, 3.0};
  const RepStats r = reduce_reps(samples, /*warmup=*/1);
  EXPECT_EQ(r.measured, 1);
  EXPECT_DOUBLE_EQ(r.best, 3.0);
  EXPECT_DOUBLE_EQ(r.median, 3.0);
  EXPECT_DOUBLE_EQ(r.p95, 3.0);
  EXPECT_DOUBLE_EQ(r.stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.cv, 0.0);
}

TEST(RepStatsTest, AllEqualSamplesGiveZeroCv) {
  const std::vector<double> samples = {2.5, 2.5, 2.5, 2.5};
  const RepStats r = reduce_reps(samples, /*warmup=*/0);
  EXPECT_DOUBLE_EQ(r.stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.cv, 0.0);
  EXPECT_DOUBLE_EQ(r.median, 2.5);
}

TEST(RepStatsTest, AllZeroSamplesDoNotDivideByZero) {
  const std::vector<double> samples = {0.0, 0.0};
  const RepStats r = reduce_reps(samples, /*warmup=*/0);
  EXPECT_DOUBLE_EQ(r.median, 0.0);
  EXPECT_DOUBLE_EQ(r.cv, 0.0);  // Defined as 0 when the median is 0.
}

TEST(RepStatsTest, RejectsNonFiniteAndNegativeSamples) {
  EXPECT_THROW(
      reduce_reps(std::vector<double>{1.0, std::nan(""), 2.0}, 0), StatsError);
  EXPECT_THROW(
      reduce_reps(
          std::vector<double>{std::numeric_limits<double>::infinity()}, 0),
      StatsError);
  EXPECT_THROW(reduce_reps(std::vector<double>{1.0, -0.5}, 0), StatsError);
  // A NaN in the warmup prefix is just as fatal: the bench misbehaved.
  EXPECT_THROW(
      reduce_reps(std::vector<double>{std::nan(""), 1.0}, 1), StatsError);
}

TEST(RepStatsTest, RejectsEmptyMeasuredSeries) {
  EXPECT_THROW(reduce_reps(std::vector<double>{}, 0), StatsError);
  EXPECT_THROW(reduce_reps(std::vector<double>{1.0}, 1), StatsError);
  EXPECT_THROW(reduce_reps(std::vector<double>{1.0, 2.0}, 5), StatsError);
  EXPECT_THROW(reduce_reps(std::vector<double>{1.0}, -1), StatsError);
}

// --------------------------------------------------------------------------
// tools/check_bench.py exit-code contract
// --------------------------------------------------------------------------

/// Builds one bench entry of a valid v2 document. `median` sets the
/// measured series {m, m, m}; `cv` is written as-is so a fixture can claim
/// any stability score.
Json fixture_bench(const std::string& name, double median, double cv) {
  Json j = Json::object();
  j["name"] = name;
  j["summary"] = "fixture";
  j["work_items"] = 100;
  Json warm = Json::array();
  warm.push_back(2.0 * median);
  j["warmup_host_seconds"] = std::move(warm);
  Json reps = Json::array();
  for (int i = 0; i < 3; ++i) reps.push_back(median);
  j["host_seconds_per_rep"] = std::move(reps);
  j["host_seconds_best"] = median;
  j["host_seconds_mean"] = median;
  j["host_seconds_median"] = median;
  j["host_seconds_p95"] = median;
  j["host_seconds_stddev"] = cv * median;
  j["cv"] = cv;
  j["finite"] = true;
  return j;
}

/// A complete passing document: every bench the gate requires, with the
/// detail payloads it validates.
Json fixture_doc(int host_cores, double median_scale = 1.0,
                 double cv = 0.01) {
  Json doc = Json::object();
  doc["schema"] = "easydram-bench-v2";
  doc["generator"] = "test_perfstats fixture";
  doc["reps"] = 3;
  doc["warmup_reps"] = 1;
  doc["scale"] = 1.0;
  doc["seed"] = 1;
  doc["host_cores"] = host_cores;

  Json benches = Json::array();
  for (const std::string name :
       {"mitigation_overhead", "raidr_refresh", "stream_sweep",
        "latency_sweep"}) {
    benches.push_back(fixture_bench(name, 0.1 * median_scale, cv));
  }

  Json scaling = fixture_bench("channel_parallel_scaling",
                               0.2 * median_scale, cv);
  Json sd = Json::object();
  sd["threads"] = 1;
  sd["host_cores"] = host_cores;
  Json spoints = Json::array();
  for (const int workers : {1, 2, 4, 8}) {
    Json p = Json::object();
    p["workers"] = workers;
    p["host_seconds_best"] = 0.2 / workers;
    p["speedup_vs_1"] = static_cast<double>(workers);
    spoints.push_back(std::move(p));
  }
  sd["points"] = std::move(spoints);
  scaling["detail"] = std::move(sd);
  benches.push_back(std::move(scaling));

  Json ecc = fixture_bench("ecc_scrub_overhead", 0.3 * median_scale, cv);
  Json ed = Json::object();
  ed["ecc_host_seconds_best"] = 0.3;
  ed["baseline_host_seconds_best"] = 0.25;
  ed["overhead_percent"] = 20.0;
  ed["ecc_emulated_ps"] = 1000;
  ed["baseline_emulated_ps"] = 900;
  ed["emulated_overhead_percent"] = 11.1;
  ecc["detail"] = std::move(ed);
  benches.push_back(std::move(ecc));

  Json qos = fixture_bench("qos_scheduler_overhead", 0.4 * median_scale, cv);
  Json qd = Json::object();
  Json qpoints = Json::array();
  for (const std::string sched : {"frfcfs", "parbs", "bliss", "atlas",
                                  "tcm"}) {
    Json p = Json::object();
    p["sched"] = sched;
    p["host_seconds_best"] = 0.4;
    p["overhead_vs_frfcfs_percent"] = 1.0;
    qpoints.push_back(std::move(p));
  }
  qd["points"] = std::move(qpoints);
  qos["detail"] = std::move(qd);
  benches.push_back(std::move(qos));

  doc["benches"] = std::move(benches);
  doc["all_finite"] = true;
  return doc;
}

class CheckBenchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::system("python3 --version > /dev/null 2>&1") != 0) {
      GTEST_SKIP() << "python3 not available";
    }
    dir_ = ::testing::TempDir();
  }

  std::string write_fixture(const std::string& name, const Json& doc) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << doc.dump_string() << "\n";
    return path;
  }

  /// Runs the real gate script; returns its exit code (-1 on spawn error).
  int run_gate(const std::string& args) {
    const std::string cmd = "python3 " EASYDRAM_REPO_DIR
                            "/tools/check_bench.py " +
                            args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    if (status < 0) return -1;
#ifdef WEXITSTATUS
    return WEXITSTATUS(status);
#else
    return status;
#endif
  }

  std::string dir_;
};

TEST_F(CheckBenchTest, PassingDocumentExitsZero) {
  const std::string p = write_fixture("pass.json", fixture_doc(4));
  EXPECT_EQ(run_gate(p), 0);
}

TEST_F(CheckBenchTest, SelfBaselineComparisonPasses) {
  const std::string p = write_fixture("pass.json", fixture_doc(4));
  EXPECT_EQ(run_gate(p + " --baseline " + p), 0);
}

TEST_F(CheckBenchTest, HighCvFailsOnMultiCoreHosts) {
  const std::string p =
      write_fixture("cv.json", fixture_doc(4, 1.0, /*cv=*/0.9));
  EXPECT_EQ(run_gate(p), 1);
}

TEST_F(CheckBenchTest, HighCvOnlyWarnsOnSingleCoreHosts) {
  const std::string p =
      write_fixture("cv1.json", fixture_doc(1, 1.0, /*cv=*/0.9));
  EXPECT_EQ(run_gate(p), 0);
}

TEST_F(CheckBenchTest, FiftyPercentRegressionFailsAgainstBaseline) {
  const std::string base = write_fixture("base.json", fixture_doc(4));
  const std::string slow =
      write_fixture("slow.json", fixture_doc(4, /*median_scale=*/1.6));
  EXPECT_EQ(run_gate(slow + " --baseline " + base), 1);
  // The other direction (new is faster) must pass.
  EXPECT_EQ(run_gate(base + " --baseline " + slow), 0);
}

TEST_F(CheckBenchTest, SchemaMismatchExitsTwo) {
  Json doc = fixture_doc(4);
  doc["schema"] = "easydram-bench-v1";
  const std::string p = write_fixture("v1.json", doc);
  EXPECT_EQ(run_gate(p), 2);
}

TEST_F(CheckBenchTest, MissingRequiredBenchFails) {
  Json doc = fixture_doc(4);
  // Rebuild the bench list without stream_sweep.
  Json pruned = Json::array();
  for (const std::string name :
       {"mitigation_overhead", "raidr_refresh", "latency_sweep"}) {
    pruned.push_back(fixture_bench(name, 0.1, 0.01));
  }
  doc["benches"] = std::move(pruned);
  const std::string p = write_fixture("missing.json", doc);
  EXPECT_EQ(run_gate(p), 1);
}

TEST_F(CheckBenchTest, V1BaselineSkipsRegressionWithWarning) {
  const std::string p = write_fixture("new.json", fixture_doc(4));
  Json old = fixture_doc(4, /*median_scale=*/0.1);
  old["schema"] = "easydram-bench-v1";
  const std::string b = write_fixture("old_v1.json", old);
  // Incomparable baseline: skipped, so the 10x slowdown does not fail.
  EXPECT_EQ(run_gate(p + " --baseline " + b), 0);
}

TEST_F(CheckBenchTest, DifferentHostCoresSkipsRegression) {
  const std::string p = write_fixture("new.json", fixture_doc(4));
  const std::string b =
      write_fixture("old_8core.json", fixture_doc(8, /*median_scale=*/0.1));
  EXPECT_EQ(run_gate(p + " --baseline " + b), 0);
}

}  // namespace
}  // namespace easydram::cli
