// Property tests for the host-performance hot-path structures: the
// slot-based RequestTable must preserve FCFS/FR-FCFS pick order against a
// reference vector implementation (the pre-overhaul design), the
// ring-buffer BoundedFifo must match std::deque semantics under randomized
// push/pop sequences, and the CompletionRing must behave like a map from
// dense ids to completions.

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "smc/request_table.hpp"
#include "smc/scheduler.hpp"
#include "sys/completion.hpp"
#include "tile/fifo.hpp"

namespace easydram {
namespace {

// --------------------------------------------------------------------------
// RequestTable vs the reference vector implementation
// --------------------------------------------------------------------------

/// The pre-overhaul request table: a dense vector with shifting erase.
/// Kept here as the behavioral reference the slot design must match.
class VectorTable {
 public:
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  void insert(smc::TableEntry e) {
    e.arrival_seq = next_seq_++;
    entries_.push_back(std::move(e));
  }

  const smc::TableEntry& at(std::size_t i) const { return entries_[i]; }

  smc::TableEntry remove(std::size_t i) {
    smc::TableEntry e = std::move(entries_[i]);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    return e;
  }

 private:
  std::uint64_t next_seq_ = 0;
  std::vector<smc::TableEntry> entries_;
};

/// Reference FCFS pick (old implementation): dense index of the oldest.
std::optional<std::size_t> ref_fcfs(const VectorTable& t) {
  if (t.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t.at(i).arrival_seq < t.at(best).arrival_seq) best = i;
  }
  return best;
}

/// Reference FR-FCFS pick (old implementation) over an open-row table.
std::optional<std::size_t> ref_frfcfs(
    const VectorTable& t,
    const std::vector<std::optional<std::uint32_t>>& open_rows) {
  if (t.empty()) return std::nullopt;
  std::optional<std::size_t> oldest_hit;
  std::size_t oldest = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const smc::TableEntry& e = t.at(i);
    if (e.arrival_seq < t.at(oldest).arrival_seq) oldest = i;
    const auto& open = open_rows[e.dram_addr.bank];
    const bool hit = open.has_value() && *open == e.dram_addr.row;
    if (hit && (!oldest_hit ||
                e.arrival_seq < t.at(*oldest_hit).arrival_seq)) {
      oldest_hit = i;
    }
  }
  return oldest_hit ? oldest_hit : oldest;
}

/// BankStateView over a plain open-row vector (per-rank bank index).
struct TableBanks final : smc::BankStateView {
  std::optional<std::uint32_t> open_row(
      const dram::DramAddress& a) const override {
    return rows[a.bank];
  }
  std::vector<std::optional<std::uint32_t>> rows;
};

smc::TableEntry random_entry(SplitMix64& rng) {
  smc::TableEntry e;
  e.dram_addr.bank = static_cast<std::uint32_t>(rng.next() % 4);
  e.dram_addr.row = static_cast<std::uint32_t>(rng.next() % 8);
  e.request.id = rng.next();
  return e;
}

/// Drives the slot table and the vector reference through an identical
/// randomized insert / pick+remove schedule and requires every pick to
/// name the same entry (same arrival_seq → same request), for both
/// schedulers and random bank states.
TEST(HotPathPropertyTest, SlotTablePreservesPickOrder) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SplitMix64 rng(seed);
    smc::RequestTable table(32);
    VectorTable ref;
    TableBanks banks;
    banks.rows.assign(4, std::nullopt);
    smc::FcfsScheduler fcfs;
    smc::FrfcfsScheduler frfcfs;
    const bool use_frfcfs = seed % 2 == 0;

    for (int step = 0; step < 400; ++step) {
      // Shuffle the open rows now and then.
      if (rng.next() % 8 == 0) {
        for (auto& r : banks.rows) {
          r = rng.next() % 2 ? std::optional<std::uint32_t>(
                                   static_cast<std::uint32_t>(rng.next() % 8))
                             : std::nullopt;
        }
      }

      const bool do_insert =
          !table.full() && (table.empty() || rng.next() % 3 != 0);
      if (do_insert) {
        smc::TableEntry e = random_entry(rng);
        ref.insert(e);  // Stamps its own (identical) arrival_seq.
        table.insert(std::move(e));
        continue;
      }

      std::size_t scanned = 0;
      const auto pick = use_frfcfs ? frfcfs.pick({table, banks}, scanned)
                                   : fcfs.pick({table, banks}, scanned);
      const auto ref_pick =
          use_frfcfs ? ref_frfcfs(ref, banks.rows) : ref_fcfs(ref);
      ASSERT_EQ(pick.has_value(), ref_pick.has_value());
      ASSERT_EQ(scanned, table.size());
      if (!pick) continue;
      const smc::TableEntry got = table.remove(*pick);
      const smc::TableEntry want = ref.remove(*ref_pick);
      ASSERT_EQ(got.arrival_seq, want.arrival_seq);
      ASSERT_EQ(got.request.id, want.request.id);
    }
  }
}

TEST(HotPathPropertyTest, SlotTableTraversalIsArrivalOrdered) {
  SplitMix64 rng(7);
  smc::RequestTable table(16);
  // Interleave inserts and removals so slots recycle out of order.
  for (int step = 0; step < 200; ++step) {
    if (!table.full() && rng.next() % 3 != 0) {
      table.insert(random_entry(rng));
    } else if (!table.empty()) {
      // Remove a random occupied slot (walk a random number of links).
      std::size_t slot = table.first();
      const std::size_t hops = rng.next() % table.size();
      for (std::size_t i = 0; i < hops; ++i) slot = table.next(slot);
      table.remove(slot);
    }
    std::uint64_t prev_seq = 0;
    bool first = true;
    std::size_t count = 0;
    for (std::size_t s = table.first(); s != smc::RequestTable::kNull;
         s = table.next(s)) {
      if (!first) EXPECT_GT(table.at(s).arrival_seq, prev_seq);
      prev_seq = table.at(s).arrival_seq;
      first = false;
      ++count;
    }
    EXPECT_EQ(count, table.size());
  }
}

// --------------------------------------------------------------------------
// Ring-buffer BoundedFifo vs std::deque
// --------------------------------------------------------------------------

TEST(HotPathPropertyTest, RingFifoMatchesDequeSemantics) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SplitMix64 rng(seed ^ 0xF1F0);
    const std::size_t capacity = 1 + rng.next() % 33;
    tile::BoundedFifo<std::uint64_t> fifo(capacity);
    std::deque<std::uint64_t> ref;

    for (int step = 0; step < 2000; ++step) {
      EXPECT_EQ(fifo.size(), ref.size());
      EXPECT_EQ(fifo.empty(), ref.empty());
      EXPECT_EQ(fifo.full(), ref.size() >= capacity);
      if (!ref.empty()) EXPECT_EQ(fifo.front(), ref.front());

      switch (rng.next() % 3) {
        case 0:
          if (!fifo.full()) {
            const std::uint64_t v = rng.next();
            fifo.push(v);
            ref.push_back(v);
          }
          break;
        case 1:
          if (!fifo.empty()) {
            EXPECT_EQ(fifo.pop(), ref.front());
            ref.pop_front();
          }
          break;
        default:
          if (!fifo.empty()) {
            fifo.drop();
            ref.pop_front();
          }
          break;
      }
    }
  }
}

TEST(HotPathPropertyTest, RingFifoContractsStillEnforced) {
  tile::BoundedFifo<int> f(2);
  EXPECT_THROW(f.pop(), ContractViolation);
  EXPECT_THROW(f.drop(), ContractViolation);
  f.push(1);
  f.push(2);
  EXPECT_THROW(f.push(3), ContractViolation);
}

// --------------------------------------------------------------------------
// CompletionRing
// --------------------------------------------------------------------------

TEST(CompletionRingTest, InOrderPutAndConsume) {
  sys::CompletionRing ring;
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    EXPECT_FALSE(ring.ready(id));
    ring.put(id, static_cast<std::int64_t>(id * 10), id % 2 == 0);
    ASSERT_TRUE(ring.ready(id));
    EXPECT_EQ(ring.release_proc_cycle(id), static_cast<std::int64_t>(id * 10));
    EXPECT_EQ(ring.ok(id), id % 2 == 0);
    ring.consume(id);
    EXPECT_FALSE(ring.ready(id));
  }
  EXPECT_EQ(ring.window(), 0u);  // Fully reclaimed: no growth leak.
}

TEST(CompletionRingTest, OutOfOrderConsumeReclaimsOnCatchUp) {
  sys::CompletionRing ring;
  for (std::uint64_t id = 1; id <= 8; ++id) ring.put(id, 0, true);
  // Consume everything but the head: the window cannot shrink yet.
  for (std::uint64_t id = 2; id <= 8; ++id) ring.consume(id);
  EXPECT_EQ(ring.window(), 8u);
  EXPECT_TRUE(ring.ready(1));
  ring.consume(1);  // Head consumed: the whole consumed prefix collapses.
  EXPECT_EQ(ring.window(), 0u);
  ring.put(9, 99, false);
  EXPECT_TRUE(ring.ready(9));
}

TEST(CompletionRingTest, GrowsPastInitialCapacityAndWraps) {
  sys::CompletionRing ring;
  SplitMix64 rng(11);
  std::uint64_t next_put = 1;
  std::uint64_t next_take = 1;
  // Random window churn with a window often larger than the initial
  // capacity, forcing both growth and head wraparound.
  for (int step = 0; step < 5000; ++step) {
    if (next_take == next_put || rng.next() % 2 == 0) {
      ring.put(next_put, static_cast<std::int64_t>(next_put), true);
      ++next_put;
    } else {
      ASSERT_TRUE(ring.ready(next_take));
      EXPECT_EQ(ring.release_proc_cycle(next_take),
                static_cast<std::int64_t>(next_take));
      ring.consume(next_take);
      ++next_take;
    }
  }
}

TEST(CompletionRingTest, ClearDiscardsWindow) {
  sys::CompletionRing ring;
  for (std::uint64_t id = 1; id <= 5; ++id) ring.put(id, 7, true);
  ring.consume(2);
  ring.clear();
  EXPECT_EQ(ring.window(), 0u);
  for (std::uint64_t id = 1; id <= 5; ++id) EXPECT_FALSE(ring.ready(id));
  // Ids continue densely after the cleared window.
  ring.put(6, 1, true);
  EXPECT_TRUE(ring.ready(6));
  EXPECT_THROW(ring.put(3, 1, true), ContractViolation);
}

TEST(CompletionRingTest, DoublePutRejected) {
  sys::CompletionRing ring;
  ring.put(1, 0, true);
  EXPECT_THROW(ring.put(1, 0, true), ContractViolation);
}

// --------------------------------------------------------------------------
// CompletionRing error paths (the graceful-degradation contract: typed
// failures travel the same ring as successes, never a silent wrong answer)
// --------------------------------------------------------------------------

TEST(CompletionRingTest, TypedFailuresSurviveTheRing) {
  sys::CompletionRing ring;
  ring.put(1, 10, true);
  ring.put(2, 20, false, RequestError::kUncorrectable);
  ring.put(3, 30, true, RequestError::kNone, /*data_reliable=*/false);

  EXPECT_TRUE(ring.ok(1));
  EXPECT_EQ(ring.error(1), RequestError::kNone);
  EXPECT_TRUE(ring.data_reliable(1));

  EXPECT_FALSE(ring.ok(2));
  EXPECT_EQ(ring.error(2), RequestError::kUncorrectable);

  EXPECT_TRUE(ring.ok(3));
  EXPECT_FALSE(ring.data_reliable(3));

  for (std::uint64_t id = 1; id <= 3; ++id) ring.consume(id);
  EXPECT_EQ(ring.window(), 0u);
}

TEST(CompletionRingTest, RetriedCompletionArrivesOutOfOrder) {
  // A retried UE read completes after younger requests that were served
  // while its re-reads ran: the failing id's slot must keep its typed
  // verdict while the younger ids come and go around it.
  sys::CompletionRing ring;
  for (std::uint64_t id = 1; id <= 4; ++id) ring.note_pending(id, 0);
  ring.put(2, 20, true);
  ring.put(3, 30, true);
  ring.put(4, 45, false, RequestError::kUncorrectable);
  EXPECT_FALSE(ring.ready(1));
  EXPECT_TRUE(ring.pending(1));
  ring.consume(3);  // Out-of-order consume leaves a hole at 3.
  ring.put(1, 90, false, RequestError::kUncorrectable);  // Retries exhausted.

  EXPECT_EQ(ring.error(1), RequestError::kUncorrectable);
  EXPECT_EQ(ring.release_proc_cycle(1), 90);
  EXPECT_EQ(ring.error(4), RequestError::kUncorrectable);
  ring.consume(1);
  ring.consume(2);
  ring.consume(4);
  EXPECT_EQ(ring.window(), 0u);
}

TEST(CompletionRingTest, WrapAroundPreservesMixedVerdicts) {
  // Churn the window past the initial capacity with a deterministic mix of
  // ok / typed-failure / unreliable completions and check every verdict
  // survives growth and head wraparound bit-exactly.
  sys::CompletionRing ring;
  std::uint64_t next_put = 1;
  std::uint64_t next_take = 1;
  SplitMix64 rng(0xECC5EED);
  const auto expected_error = [](std::uint64_t id) {
    return id % 5 == 0 ? RequestError::kUncorrectable : RequestError::kNone;
  };
  for (int step = 0; step < 5000; ++step) {
    if (next_take == next_put || rng.next() % 2 == 0) {
      const std::uint64_t id = next_put++;
      ring.put(id, static_cast<std::int64_t>(id), expected_error(id) ==
                                                      RequestError::kNone,
               expected_error(id), /*data_reliable=*/id % 3 != 0);
    } else {
      const std::uint64_t id = next_take++;
      ASSERT_TRUE(ring.ready(id));
      EXPECT_EQ(ring.error(id), expected_error(id)) << id;
      EXPECT_EQ(ring.ok(id), expected_error(id) == RequestError::kNone) << id;
      EXPECT_EQ(ring.data_reliable(id), id % 3 != 0) << id;
      ring.consume(id);
    }
  }
}

}  // namespace
}  // namespace easydram
