// Google-benchmark microbenchmarks of the library's hot primitives. These
// do not reproduce a paper artifact; they guard the simulation-speed
// properties the end-to-end benches (especially Fig. 14) depend on.

#include <benchmark/benchmark.h>

#include "bender/interpreter.hpp"
#include "cpu/cache.hpp"
#include "dram/device.hpp"
#include "smc/bloom.hpp"
#include "smc/scheduler.hpp"

namespace {

using namespace easydram;
using namespace easydram::literals;

dram::VariationConfig fast_variation() {
  dram::VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  return v;
}

void BM_DeviceActReadPre(benchmark::State& state) {
  dram::DramDevice dev(dram::Geometry{}, dram::ddr4_1333(), fast_variation());
  Picoseconds t{0};
  std::uint32_t row = 0;
  for (auto _ : state) {
    dev.issue(dram::Command::kAct, {0, row, 0}, dev.earliest_legal(dram::Command::kAct, {0, row, 0}));
    dev.issue(dram::Command::kRead, {0, row, 0}, dev.earliest_legal(dram::Command::kRead, {0, row, 0}));
    dev.issue(dram::Command::kPre, {0, 0, 0}, dev.earliest_legal(dram::Command::kPre, {0, 0, 0}));
    row = (row + 1) % 1024;
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_DeviceActReadPre);

void BM_VariationRowMinTrcd(benchmark::State& state) {
  const dram::Geometry geo;
  const dram::VariationModel model(geo, dram::VariationConfig{});
  std::uint32_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.row_min_trcd(row % 16, row % 32768));
    ++row;
  }
}
BENCHMARK(BM_VariationRowMinTrcd);

void BM_BenderBatchExecute(benchmark::State& state) {
  dram::DramDevice dev(dram::Geometry{}, dram::ddr4_1333(), fast_variation());
  bender::Interpreter interp(dev);
  bender::Program p;
  p.ddr(dram::Command::kAct, {0, 1, 0});
  for (std::uint32_t c = 0; c < 8; ++c) p.ddr(dram::Command::kRead, {0, 1, c}, true);
  p.ddr(dram::Command::kPre, {0, 0, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.execute(p, dev.now()));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_BenderBatchExecute);

void BM_CacheAccessHit(benchmark::State& state) {
  cpu::Cache cache(cpu::CacheConfig{512 * 1024, 8, 64});
  for (std::uint64_t i = 0; i < 512; ++i) cache.fill(i * 64);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access((i % 512) * 64));
    ++i;
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_FrfcfsPick(benchmark::State& state) {
  smc::RequestTable table(32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    smc::TableEntry e;
    e.dram_addr = dram::DramAddress{i % 16, i * 7 % 1024, 0};
    table.insert(std::move(e));
  }
  struct AlternatingBanks final : smc::BankStateView {
    std::optional<std::uint32_t> open_row(const dram::DramAddress& a) const override {
      return a.bank % 2 == 0 ? std::optional<std::uint32_t>{7} : std::nullopt;
    }
  };
  const AlternatingBanks banks;
  smc::FrfcfsScheduler sched;
  std::size_t scanned = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.pick({table, banks}, scanned));
  }
}
BENCHMARK(BM_FrfcfsPick);

void BM_BloomQuery(benchmark::State& state) {
  smc::BloomFilter filter(1 << 17, 4);
  for (std::uint64_t k = 0; k < 5000; ++k) filter.insert(k * 13);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.maybe_contains(k++));
  }
}
BENCHMARK(BM_BloomQuery);

}  // namespace

BENCHMARK_MAIN();
