// Retention-aware refresh tables: REF-issue reduction of the RAIDR-style
// skipping policy vs the all-rows baseline, and the savings' sensitivity
// to the synthetic chip's retention weakness
// (src/cli/scenarios_refresh.cpp holds the measurement). An extension
// beyond the paper's two technique families, exercising the refresh
// pacing machinery from the opposite direction to the RowHammer
// mitigators' extra refreshes.

#include <array>

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  constexpr std::array<std::string_view, 2> kDefaults{"raidr_baseline",
                                                      "raidr_savings"};
  return easydram::cli::scenario_main(
      std::span<const std::string_view>(kDefaults), argc, argv);
}
