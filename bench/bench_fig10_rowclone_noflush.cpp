// Regenerates Figure 10: RowClone - No Flush execution-time speedup for the
// Copy (a) and Init (b) microbenchmarks over data sizes 8 KiB .. 16 MiB,
// normalized to each configuration's CPU load/store baseline, on three
// evaluation stacks: EasyDRAM - No Time Scaling (PiDRAM-like system),
// EasyDRAM - Time Scaling (Cortex A57 target), and the Ramulator-2.0-like
// software simulator (idealized RowClone: every pair succeeds).

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "ramulator/ramulator.hpp"

using namespace easydram;

namespace {

double easydram_speedup(const sys::SystemConfig& cfg,
                        workloads::CopyInitParams::Kind kind, std::size_t rows,
                        bool clflush) {
  workloads::CopyInitParams base;
  base.kind = kind;
  base.use_rowclone = false;
  base.clflush = clflush;
  const auto cpu = bench::run_copyinit_easydram(cfg, base, rows);

  workloads::CopyInitParams rc = base;
  rc.use_rowclone = true;
  const auto rowclone = bench::run_copyinit_easydram(cfg, rc, rows);

  return static_cast<double>(cpu.measured_cycles) /
         static_cast<double>(rowclone.measured_cycles);
}

double ramulator_speedup(workloads::CopyInitParams::Kind kind, std::size_t rows,
                         bool clflush) {
  // Ramulator 2.0's modelling gap (paper footnote 6): all pairs clone.
  std::vector<smc::CopyPlanEntry> copy_plan;
  std::vector<smc::InitPlanEntry> init_plan;
  for (std::size_t i = 0; i < rows; ++i) {
    if (kind == workloads::CopyInitParams::Kind::kCopy) {
      smc::CopyPlanEntry e;
      e.src = smc::RowRef{0, static_cast<std::uint32_t>(2 * i)};
      e.dst = smc::RowRef{0, static_cast<std::uint32_t>(2 * i + 1)};
      e.use_rowclone = true;
      copy_plan.push_back(e);
    } else {
      smc::InitPlanEntry e;
      e.dst = smc::RowRef{0, static_cast<std::uint32_t>(i)};
      e.pattern_src = smc::RowRef{0, 32767};
      e.use_rowclone = true;
      init_plan.push_back(e);
    }
  }
  const dram::Geometry geo;
  const smc::LinearMapper mapper(geo);

  auto run = [&](bool use_rowclone) {
    workloads::CopyInitParams p;
    p.kind = kind;
    p.use_rowclone = use_rowclone;
    p.clflush = clflush;
    workloads::CopyInitTrace trace(p, mapper, copy_plan, init_plan);
    ramulator::RamulatorSim sim{ramulator::RamulatorConfig{}};
    const auto stats = sim.run(trace);
    if (stats.markers.size() >= 2) return stats.markers.back() - stats.markers.front();
    return stats.cycles;
  };
  return static_cast<double>(run(false)) / static_cast<double>(run(true));
}

}  // namespace

int main(int argc, char** argv) {
  const bool clflush = argc > 1 && std::string(argv[1]) == "--clflush";
  bench::banner(clflush ? "Figure 11: RowClone - CLFLUSH speedup"
                        : "Figure 10: RowClone - No Flush speedup",
                clflush ? "EasyDRAM (DSN 2025), Fig. 11"
                        : "EasyDRAM (DSN 2025), Fig. 10");

  const sys::SystemConfig nts = sys::pidram_no_time_scaling();
  const sys::SystemConfig ts = sys::jetson_nano_time_scaling();

  for (const auto kind : {workloads::CopyInitParams::Kind::kCopy,
                          workloads::CopyInitParams::Kind::kInit}) {
    const bool is_copy = kind == workloads::CopyInitParams::Kind::kCopy;
    std::cout << (is_copy ? "(a) Copy\n" : "(b) Init\n");
    TextTable t;
    t.set_header({"Size", "EasyDRAM - No Time Scaling", "EasyDRAM - Time Scaling",
                  "Ramulator 2.0"});
    Summary s_nts, s_ts, s_ram;
    for (std::uint64_t bytes = 8 * 1024; bytes <= 16ull * 1024 * 1024; bytes *= 2) {
      const std::size_t rows = static_cast<std::size_t>(bytes / 8192);
      const double v_nts = easydram_speedup(nts, kind, rows, clflush);
      const double v_ts = easydram_speedup(ts, kind, rows, clflush);
      const double v_ram = ramulator_speedup(kind, rows, clflush);
      s_nts.add(v_nts);
      s_ts.add(v_ts);
      s_ram.add(v_ram);
      t.add_row({bench::fmt_size(bytes), fmt_fixed(v_nts, 1) + "x",
                 fmt_fixed(v_ts, 2) + "x", fmt_fixed(v_ram, 1) + "x"});
    }
    t.add_row({"average", fmt_fixed(s_nts.mean(), 1) + "x",
               fmt_fixed(s_ts.mean(), 2) + "x", fmt_fixed(s_ram.mean(), 1) + "x"});
    t.add_row({"maximum", fmt_fixed(s_nts.max(), 1) + "x",
               fmt_fixed(s_ts.max(), 2) + "x", fmt_fixed(s_ram.max(), 1) + "x"});
    t.print(std::cout);
    std::cout << '\n';
  }

  if (!clflush) {
    std::cout << "Paper (Fig. 10) avg(max): Copy NoTS 306.7x(423.1x), TS 15.0x(17.4x),\n"
                 "Ramulator 27.2x(33.0x); Init NoTS 36.7x(51.3x), TS 1.8x(2.0x),\n"
                 "Ramulator 17.3x(21.0x). Shape to check: NoTS >> Ramulator > TS for\n"
                 "Copy; the ~20x NoTS/TS skew; Ramulator Init >> TS Init (no fallback\n"
                 "or per-operation software cost modeled in Ramulator).\n";
  } else {
    std::cout << "Paper (Fig. 11) avg(max): Copy TS 4.04x(6.62x), NoTS 3.1x(4.83x);\n"
                 "Init degrades at small sizes (<=256KB TS, <=32KB NoTS) and improves\n"
                 "with size. Shape to check: coherence flushes crush small-size\n"
                 "benefits; speedups grow with data size.\n";
  }
  return 0;
}
