// Regenerates Figure 10: RowClone - No Flush execution-time speedup for the
// Copy (a) and Init (b) microbenchmarks over data sizes 8 KiB .. 16 MiB.
// The sweep lives in src/cli/scenarios_rowclone.cpp; this binary is the
// standalone entry point (flags: --seed/--iters/--threads/--out).

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("fig10_rowclone_noflush", argc, argv);
}
