// Regenerates Figure 2: execution-time breakdown of a memory request into
// processing, scheduling, and main-memory components across four system
// configurations (src/cli/scenarios_system.cpp holds the measurement).

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("fig2_breakdown", argc, argv);
}
