// Regenerates Figure 2: execution-time breakdown of a memory request into
// processing, scheduling, and main-memory components across four system
// configurations. As in the paper, the figure is qualitative: what matters
// is that (1) FPGA builds stretch the processing component, (2) a software
// memory controller stretches scheduling, and (3) time scaling restores
// realistic proportions.

#include <iostream>

#include "bench_util.hpp"
#include "workloads/builder.hpp"

using namespace easydram;

namespace {

struct Breakdown {
  double processing_ns;
  double scheduling_ns;
  double memory_ns;
};

/// One dependent load miss with a fixed instruction preamble, measured on
/// the given system configuration. Components: processing = preamble
/// instructions at the processor's clock; memory = DRAM-interface busy
/// time; scheduling = everything else in the request's latency.
Breakdown measure(const sys::SystemConfig& cfg, double clock_hz) {
  sys::EasyDramSystem sysm(cfg);
  workloads::TraceBuilder b;
  constexpr int kPreamble = 100;
  b.compute(kPreamble);
  b.load_dependent(8192);
  cpu::VectorTrace trace(b.take());
  const cpu::RunResult r = sysm.run(trace);

  const double total_ns = static_cast<double>(r.cycles) / clock_hz * 1e9;
  const double processing_ns =
      static_cast<double>(kPreamble) /
      static_cast<double>(cfg.core.issue_width) / clock_hz * 1e9;
  const double memory_ns = sysm.smc_stats().dram_busy.nanoseconds();
  Breakdown out{};
  out.processing_ns = processing_ns;
  out.memory_ns = memory_ns;
  out.scheduling_ns = std::max(0.0, total_ns - processing_ns - memory_ns);
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 2: memory-request execution-time breakdown",
                "EasyDRAM (DSN 2025), Fig. 2 (qualitative)");

  // 1) Real system: GHz-class processor, hardware memory controller.
  sys::SystemConfig real = sys::jetson_nano_time_scaling();
  real.mode = timescale::SystemMode::kReference;
  real.proc_domain = timescale::DomainConfig{Frequency{1'430'000'000},
                                             Frequency{1'430'000'000}};

  // 2) FPGA + RTL memory controller: slow processor, hardware-speed MC
  //    (PiDRAM-like platform before adding a software controller).
  sys::SystemConfig fpga_rtl = sys::pidram_no_time_scaling();
  fpga_rtl.mode = timescale::SystemMode::kReference;
  fpga_rtl.proc_domain = timescale::DomainConfig{Frequency::megahertz(50),
                                                 Frequency::megahertz(50)};
  fpga_rtl.core = cpu::pidram_inorder_core();
  fpga_rtl.hardware_mc = true;           // Fixed-function RTL controller.
  fpga_rtl.mc_sched_latency_cycles = 2;  // Two pipeline stages at 50 MHz.

  // 3) FPGA + software memory controller (no time scaling).
  const sys::SystemConfig fpga_smc = sys::pidram_no_time_scaling();

  // 4) FPGA + software MC + time scaling.
  const sys::SystemConfig fpga_ts = sys::jetson_nano_time_scaling();

  const Breakdown b1 = measure(real, 1.43e9);
  const Breakdown b2 = measure(fpga_rtl, 50e6);
  const Breakdown b3 = measure(fpga_smc, 50e6);
  const Breakdown b4 = measure(fpga_ts, 1.43e9);

  TextTable t;
  t.set_header({"Configuration", "Processing (ns)", "Scheduling (ns)",
                "Main memory (ns)"});
  auto row = [&](const char* name, const Breakdown& b) {
    t.add_row({name, fmt_fixed(b.processing_ns, 1), fmt_fixed(b.scheduling_ns, 1),
               fmt_fixed(b.memory_ns, 1)});
  };
  row("Real system", b1);
  row("FPGA + RTL memory controller", b2);
  row("FPGA + software memory controller", b3);
  row("FPGA + software MC + time scaling", b4);
  t.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 2): FPGA configs stretch\n"
               "processing; the software MC stretches scheduling; main\n"
               "memory stays constant; time scaling restores the real\n"
               "system's proportions on the emulated timeline.\n";

  const bool memory_constant =
      std::abs(b1.memory_ns - b3.memory_ns) < 0.5 * b1.memory_ns;
  const bool smc_stretches_sched = b3.scheduling_ns > 3.0 * b2.scheduling_ns;
  const bool ts_restores = std::abs(b4.processing_ns - b1.processing_ns) <
                           0.2 * b1.processing_ns;
  std::cout << "\nChecks: memory-constant=" << (memory_constant ? "yes" : "NO")
            << " smc-stretches-scheduling=" << (smc_stretches_sched ? "yes" : "NO")
            << " ts-restores-processing=" << (ts_restores ? "yes" : "NO") << "\n";
  return 0;
}
