// Regenerates Table 1: qualitative comparison of evaluation platforms, with
// this reproduction's measured "evaluated CPU cycles per second" for the
// EasyDRAM row (computed from the modelled FPGA wall clock, as the paper's
// ~10M figure is).

#include <iostream>

#include "bench_util.hpp"
#include "workloads/polybench.hpp"

using namespace easydram;

int main() {
  bench::banner("Table 1: platform comparison",
                "EasyDRAM (DSN 2025), Table 1");

  // Measure the evaluated-cycles-per-second of this EasyDRAM model on a
  // representative workload (mix of compute and memory).
  sys::EasyDramSystem sysm(sys::jetson_nano_time_scaling());
  auto records = workloads::generate_kernel("gemver");
  cpu::VectorTrace trace(std::move(records));
  const cpu::RunResult r = sysm.run(trace);
  const double speed_hz =
      static_cast<double>(r.cycles) / sysm.wall().seconds();

  TextTable t;
  t.set_header({"Platform", "Real DRAM", "Flexible MC", "Eval. CPU cycles/s",
                "Accurate perf.", "Easily configurable"});
  t.add_row({"Commercial systems", "yes", "no", "billions", "yes", "no"});
  t.add_row({"Software simulators", "no", "yes (C/C++)", "~10K - ~1M", "yes", "yes"});
  t.add_row({"FPGA-based simulators", "no", "no", "~4M - ~100M", "yes", "yes"});
  t.add_row({"DRAM testing platforms", "DDR3/4", "no", "N/A", "no", "no"});
  t.add_row({"FPGA-based emulators", "DDR3/4", "HDL", "50M - 200M", "no", "yes"});
  t.add_row({"EasyDRAM (this repro)", "DDR4 (modelled)", "yes (C/C++)",
             fmt_fixed(speed_hz / 1e6, 1) + "M (measured)", "yes", "yes"});
  t.print(std::cout);

  std::cout << "\nPaper reports ~10M evaluated CPU cycles/s for EasyDRAM.\n"
            << "Measured here on gemver: " << fmt_fixed(speed_hz / 1e6, 2)
            << "M emulated cycles per modelled-FPGA second.\n";
  return 0;
}
