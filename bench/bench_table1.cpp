// Regenerates Table 1: qualitative comparison of evaluation platforms, with
// this reproduction's measured "evaluated CPU cycles per second" for the
// EasyDRAM row (src/cli/scenarios_system.cpp holds the measurement).

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("table1_platforms", argc, argv);
}
