// Regenerates Figure 14: evaluation speed (simulated processor cycles per
// second) of EasyDRAM versus the Ramulator-2.0-like baseline
// (src/cli/scenarios_system.cpp holds the measurement; its Ramulator column
// is the only place this repository reads a real clock).

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("fig14_sim_speed", argc, argv);
}
