// Regenerates Figure 14: evaluation speed (simulated processor cycles per
// second, in MHz) of EasyDRAM versus the Ramulator-2.0-like baseline across
// the Fig. 13 kernels. EasyDRAM's speed is emulated cycles divided by the
// modelled FPGA wall-clock (the quantity an FPGA deployment achieves);
// Ramulator's speed is measured host wall-clock of the cycle-stepped
// simulator — the only place this repository reads a real clock.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "ramulator/ramulator.hpp"
#include "workloads/polybench.hpp"

using namespace easydram;

int main() {
  bench::banner("Figure 14: simulation speed", "EasyDRAM (DSN 2025), Fig. 14");

  TextTable t;
  t.set_header({"Workload", "EasyDRAM (MHz)", "Ramulator 2.0 (MHz)", "Ratio"});
  std::vector<double> ratios;

  for (const auto name : workloads::fig13_names()) {
    const auto records = workloads::generate_kernel(name);

    sys::EasyDramSystem sysm(sys::jetson_nano_time_scaling());
    cpu::VectorTrace t1(records);
    const auto r = sysm.run(t1);
    const double easy_mhz =
        static_cast<double>(r.cycles) / sysm.wall().seconds() / 1e6;

    ramulator::RamulatorSim sim{ramulator::RamulatorConfig{}};
    cpu::VectorTrace t2(records);
    const auto host_start = std::chrono::steady_clock::now();
    const auto s = sim.run(t2);
    const double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - host_start)
            .count();
    const double ram_mhz = static_cast<double>(s.cycles) / host_seconds / 1e6;

    const double ratio = easy_mhz / ram_mhz;
    ratios.push_back(ratio);
    t.add_row({std::string(name), fmt_fixed(easy_mhz, 2), fmt_fixed(ram_mhz, 2),
               fmt_fixed(ratio, 1) + "x"});
  }

  t.add_row({"geomean", "", "", fmt_fixed(geomean(ratios), 1) + "x"});
  t.print(std::cout);

  Summary s;
  for (double v : ratios) s.add(v);
  std::cout << "\nPaper: EasyDRAM averages 5.9x (max 20.3x) faster than\n"
               "Ramulator 2.0, with the gap growing as memory intensity falls\n"
               "(durbin, ~0.01 LLC MPKC, shows the maximum). Measured here:\n"
               "avg " << fmt_fixed(s.mean(), 1) << "x, max " << fmt_fixed(s.max(), 1)
            << "x. Note: the Ramulator column depends on host CPU speed; the\n"
               "EasyDRAM column is a deterministic model output.\n";
  return 0;
}
