#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "cpu/trace.hpp"
#include "smc/rowclone_alloc.hpp"
#include "sys/system.hpp"
#include "workloads/copyinit.hpp"

namespace easydram::bench {

/// Prints a figure/table banner matching the paper artifact being
/// regenerated.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n\n";
}

/// Outcome of one Copy/Init measurement.
struct CopyInitResult {
  std::int64_t measured_cycles = 0;  ///< Between the two markers.
  std::int64_t rowclones = 0;
  std::int64_t fallbacks = 0;
};

/// Builds a fresh EasyDRAM system for `cfg`, prepares the RowClone
/// allocation plan (verification runs uncharged, as setup), pre-loads the
/// source/pattern rows, and runs one Copy or Init workload variant.
inline CopyInitResult run_copyinit_easydram(
    const sys::SystemConfig& cfg, workloads::CopyInitParams params,
    std::size_t rows, int verify_trials = 8) {
  sys::EasyDramSystem sysm(cfg);
  smc::RowClonePairTester tester(sysm.api(), verify_trials);
  smc::RowCloneAllocator alloc(sysm.api(), sysm.clone_map(), tester);

  std::vector<smc::CopyPlanEntry> copy_plan;
  std::vector<smc::InitPlanEntry> init_plan;
  if (params.kind == workloads::CopyInitParams::Kind::kCopy) {
    copy_plan = alloc.plan_copy(rows);
  } else {
    init_plan = alloc.plan_init(rows);
    // Pattern rows are initialized once at setup (uncharged): write the
    // init pattern into each reserved source row.
    std::vector<std::uint8_t> pattern(sysm.device().geometry().row_bytes, 0xA5);
    for (const auto& e : init_plan) {
      sysm.device().backdoor_write_row(e.pattern_src.bank, e.pattern_src.row,
                                       pattern);
    }
  }
  if (params.use_rowclone) sysm.enable_rowclone();

  const smc::LinearMapper mapper(sysm.device().geometry());
  workloads::CopyInitTrace trace(params, mapper, std::move(copy_plan),
                                 std::move(init_plan));
  const cpu::RunResult r = sysm.run(trace);

  CopyInitResult out;
  out.rowclones = r.rowclones;
  out.fallbacks = r.rowclone_fallbacks;
  if (r.markers.size() >= 2) {
    out.measured_cycles = r.markers.back() - r.markers.front();
  } else {
    out.measured_cycles = r.cycles;
  }
  return out;
}

/// Formats a byte size like the paper's x axes (8K ... 16M).
inline std::string fmt_size(std::uint64_t bytes) {
  if (bytes >= (1u << 20)) return std::to_string(bytes >> 20) + "M";
  return std::to_string(bytes >> 10) + "K";
}

}  // namespace easydram::bench
