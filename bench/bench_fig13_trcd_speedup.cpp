// Regenerates Figure 13: execution-time speedup from tRCD reduction across
// the PolyBench kernel subset, on EasyDRAM - Time Scaling and on the
// Ramulator-2.0-like baseline (src/cli/scenarios_trcd.cpp holds the study).

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("fig13_trcd_speedup", argc, argv);
}
