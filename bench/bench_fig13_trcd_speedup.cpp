// Regenerates Figure 13: execution-time speedup from tRCD reduction across
// the 11 PolyBench kernels, on EasyDRAM - Time Scaling (workloads run to
// completion, Bloom-filter-directed reduced accesses over the profiled
// module) and on the Ramulator-2.0-like baseline (500 M-instruction window,
// per-row profiled tRCD values, simple OoO core).

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "ramulator/ramulator.hpp"
#include "smc/trcd_profiler.hpp"
#include "workloads/polybench.hpp"

using namespace easydram;

namespace {

/// Rows per bank the workload's footprint can touch under the line-
/// interleaved mapping (footprint striped across all banks).
std::uint32_t footprint_rows_per_bank(const std::vector<cpu::TraceRecord>& trace,
                                      const dram::Geometry& geo) {
  std::uint64_t max_addr = 0;
  for (const auto& r : trace) max_addr = std::max(max_addr, r.addr);
  const std::uint64_t lines = max_addr / 64 + 1;
  const std::uint64_t per_bank = lines / geo.num_banks() + 1;
  return static_cast<std::uint32_t>(per_bank / geo.cols_per_row() + 2);
}

}  // namespace

int main() {
  bench::banner("Figure 13: tRCD-reduction speedup",
                "EasyDRAM (DSN 2025), Fig. 13");

  TextTable t;
  t.set_header({"Workload", "EasyDRAM", "Ramulator 2.0", "(EasyDRAM MPKC)"});
  std::vector<double> easy_speedups, ram_speedups;

  const dram::Geometry geo;
  for (const auto name : workloads::fig13_names()) {
    const auto trace_records = workloads::generate_kernel(name);
    const std::uint32_t rows = footprint_rows_per_bank(trace_records, geo);
    std::vector<std::uint32_t> banks(geo.num_banks());
    for (std::uint32_t b = 0; b < geo.num_banks(); ++b) banks[b] = b;

    // --- EasyDRAM: baseline vs Bloom-directed reduction, run to completion.
    auto make_cfg = [] {
      sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
      cfg.line_interleaved_mapping = true;
      return cfg;
    };
    sys::EasyDramSystem base(make_cfg());
    cpu::VectorTrace t_base(trace_records);
    const auto r_base = base.run(t_base);

    sys::EasyDramSystem reduced(make_cfg());
    smc::WeakRowFilterStats fstats;
    auto filter = smc::build_weak_row_filter(reduced.api(), banks, rows,
                                             Picoseconds{9000}, 1 << 17, 4,
                                             &fstats);
    reduced.install_weak_row_filter(std::move(filter));
    cpu::VectorTrace t_red(trace_records);
    const auto r_red = reduced.run(t_red);

    const double easy = static_cast<double>(r_base.cycles) /
                        static_cast<double>(r_red.cycles);
    easy_speedups.push_back(easy);
    const double mpkc = 1000.0 * static_cast<double>(r_base.l2_misses) /
                        static_cast<double>(r_base.cycles);

    // --- Ramulator: nominal vs profiled per-row tRCD (ground truth from
    // the same characterization; 500 M-instruction window).
    ramulator::RamulatorConfig rcfg;
    ramulator::RamulatorSim sim_base(rcfg);
    cpu::VectorTrace t_ram1(trace_records);
    const auto s_base = sim_base.run(t_ram1);

    ramulator::RamulatorConfig rcfg_red = rcfg;
    const dram::VariationModel variation(geo, dram::VariationConfig{});
    rcfg_red.trcd_of = [&variation](std::uint32_t bank, std::uint32_t row) {
      return variation.row_min_trcd(bank, row) <= Picoseconds{9000}
                 ? Picoseconds{9000}
                 : Picoseconds{13500};
    };
    ramulator::RamulatorSim sim_red(rcfg_red);
    cpu::VectorTrace t_ram2(trace_records);
    const auto s_red = sim_red.run(t_ram2);
    const double ram = static_cast<double>(s_base.cycles) /
                       static_cast<double>(s_red.cycles);
    ram_speedups.push_back(ram);

    t.add_row({std::string(name), fmt_fixed((easy - 1.0) * 100.0, 2) + "%",
               fmt_fixed((ram - 1.0) * 100.0, 2) + "%", fmt_fixed(mpkc, 2)});
  }

  t.add_row({"geomean", fmt_fixed((geomean(easy_speedups) - 1.0) * 100.0, 2) + "%",
             fmt_fixed((geomean(ram_speedups) - 1.0) * 100.0, 2) + "%", ""});
  t.print(std::cout);

  Summary easy_sum, ram_sum;
  for (double v : easy_speedups) easy_sum.add((v - 1.0) * 100.0);
  for (double v : ram_speedups) ram_sum.add((v - 1.0) * 100.0);
  std::cout << "\nEasyDRAM avg(max): " << fmt_fixed(easy_sum.mean(), 2) << "%("
            << fmt_fixed(easy_sum.max(), 2) << "%)  — paper: 2.75%(9.76%)\n"
            << "Ramulator avg(max): " << fmt_fixed(ram_sum.mean(), 2) << "%("
            << fmt_fixed(ram_sum.max(), 2) << "%)  — paper: 2.58%(7.04%)\n"
            << "(Workloads are not memory-intensive — paper reports 2.2 LLC\n"
            << "misses per kilo-cycle on average — so single-digit gains are\n"
            << "the expected shape.)\n";
  return 0;
}
