// Regenerates Figure 11: RowClone - CLFLUSH speedup. The sweep logic is
// shared with Figure 10 (bench_fig10_rowclone_noflush.cpp); this binary
// simply runs it with coherence flushes enabled.

int fig10_main(int argc, char** argv);

#define main fig10_main
#include "bench_fig10_rowclone_noflush.cpp"  // NOLINT(bugprone-suspicious-include)
#undef main

int main() {
  char arg0[] = "bench_fig11_rowclone_clflush";
  char arg1[] = "--clflush";
  char* argv[] = {arg0, arg1, nullptr};
  return fig10_main(2, argv);
}
