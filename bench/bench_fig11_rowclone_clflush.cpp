// Regenerates Figure 11: RowClone - CLFLUSH speedup. The sweep logic is
// shared with Figure 10 (src/cli/scenarios_rowclone.cpp); this scenario
// runs it with coherence flushes enabled.

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("fig11_rowclone_clflush", argc, argv);
}
