// Regenerates the §6 time-scaling validation: a time-scaled 100 MHz system
// must report execution times within <0.1 % (average) and <1 % (maximum) of
// a 1 GHz RTL reference across 28 PolyBench workloads plus lmbench
// (src/cli/scenarios_validation.cpp holds the study).

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("validation_timescale", argc, argv);
}
