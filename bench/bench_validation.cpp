// Regenerates the §6 time-scaling validation: an EasyDRAM system whose
// 100 MHz processor is time-scaled to 1 GHz must report execution times
// within <0.1 % (average) and <1 % (maximum) of a 1 GHz RTL reference
// system that makes the same scheduling decisions, across 28 PolyBench
// workloads plus the lmbench memory-read-latency microbenchmark.

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "workloads/lmbench.hpp"
#include "workloads/polybench.hpp"

using namespace easydram;

int main() {
  bench::banner("Time-scaling validation (28 PolyBench + lmbench)",
                "EasyDRAM (DSN 2025), Section 6: <0.1% avg, <1% max error");

  TextTable t;
  t.set_header({"Workload", "Reference 1GHz (cycles)", "TS 100MHz->1GHz (cycles)",
                "Error (%)"});
  Summary err_summary;

  auto run_pair = [&](const std::string& name,
                      const std::vector<cpu::TraceRecord>& records) {
    sys::EasyDramSystem ts(sys::validation_time_scaling());
    cpu::VectorTrace t1(records);
    const auto r_ts = ts.run(t1);

    sys::EasyDramSystem ref(sys::validation_reference());
    cpu::VectorTrace t2(records);
    const auto r_ref = ref.run(t2);

    const double err = 100.0 *
                       std::abs(static_cast<double>(r_ts.cycles - r_ref.cycles)) /
                       static_cast<double>(r_ref.cycles);
    err_summary.add(err);
    t.add_row({name, std::to_string(r_ref.cycles), std::to_string(r_ts.cycles),
               fmt_fixed(err, 4)});
  };

  for (const auto& kernel : workloads::all_kernels()) {
    run_pair(std::string(kernel.name), kernel.generate());
  }
  run_pair("lmbench-lat-mem-rd", workloads::make_lmbench_chase(2 << 20, 4));

  t.print(std::cout);
  std::cout << "\nAverage error: " << fmt_fixed(err_summary.mean(), 4)
            << "% (paper: <0.1%)\nMaximum error: "
            << fmt_fixed(err_summary.max(), 4) << "% (paper: <1%)\n";
  return 0;
}
