// Channels x mapper throughput table: read-burst requests/us for 1/2/4
// memory channels under the row-linear, line-interleaved and
// channel-interleaved mappings, plus the rank-interleaving companion table
// (src/cli/scenarios_memsys.cpp holds the measurement). An extension beyond
// the paper's single-channel case-study system.

#include <array>

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  constexpr std::array<std::string_view, 2> kDefaults{"channel_scaling",
                                                      "rank_interleaving"};
  return easydram::cli::scenario_main(
      std::span<const std::string_view>(kDefaults), argc, argv);
}
