// Ablation studies of the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify why each mechanism exists by
// turning it off (or sweeping it) on a fixed workload set
// (src/cli/scenarios_{validation,rowclone}.cpp hold the studies).
//
//  A1  Row-hit batch draining (row_batch_limit 1 / 4 / 16)
//  A2  Scheduling policy (FCFS / FR-FCFS / PAR-BS / BLISS)
//  A3  Software vs. hardware memory controller latency
//  A4  RowClone bank interleaving (the §7.1 future-work optimization)

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  static constexpr std::string_view kAblations[] = {
      "ablation_batch_limit",
      "ablation_scheduler",
      "ablation_hardware_mc",
      "ablation_rowclone_interleaving",
  };
  return easydram::cli::scenario_main(kAblations, argc, argv);
}
