// Ablation studies of the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify why each mechanism exists by
// turning it off (or sweeping it) on a fixed workload set.
//
//  A1  Row-hit batch draining (row_batch_limit 1 / 4 / 16)
//  A2  Scheduling policy (FCFS / FR-FCFS / PAR-BS / BLISS)
//  A3  Software vs. hardware memory controller latency
//  A4  RowClone bank interleaving (the §7.1 future-work optimization)

#include <iostream>

#include "bench_util.hpp"
#include "smc/rowclone_alloc.hpp"
#include "workloads/polybench.hpp"

using namespace easydram;

namespace {

dram::VariationConfig strong_variation() {
  dram::VariationConfig v;
  v.min_trcd = Picoseconds{1000};
  v.max_trcd = Picoseconds{1001};
  v.rowclone_pair_success = 1.0;
  return v;
}

std::int64_t run_kernel(const sys::SystemConfig& cfg, std::string_view name) {
  sys::EasyDramSystem sysm(cfg);
  auto records = workloads::generate_kernel(name);
  cpu::VectorTrace trace(std::move(records));
  return sysm.run(trace).cycles;
}

void ablate_batch_limit() {
  std::cout << "A1. Row-hit batch draining (gesummv execution cycles)\n";
  TextTable t;
  t.set_header({"row_batch_limit", "cycles", "vs limit=16"});
  std::int64_t base = 0;
  for (const std::size_t limit : {16u, 4u, 1u}) {
    sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
    // The limit lives in ControllerOptions; thread it through a custom
    // scheduler-factory-free path by rebuilding the default controller.
    cfg.row_batch_limit = limit;
    const std::int64_t cycles = run_kernel(cfg, "gesummv");
    if (limit == 16) base = cycles;
    t.add_row({std::to_string(limit), std::to_string(cycles),
               fmt_fixed(100.0 * (static_cast<double>(cycles) /
                                      static_cast<double>(base) -
                                  1.0),
                         1) +
                   "%"});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void ablate_scheduler() {
  std::cout << "A2. Scheduling policy (mvt execution cycles)\n";
  TextTable t;
  t.set_header({"policy", "cycles"});
  struct Policy {
    const char* name;
    std::function<std::unique_ptr<smc::Scheduler>()> factory;
  };
  const Policy policies[] = {
      {"FCFS", [] { return std::make_unique<smc::FcfsScheduler>(); }},
      {"FR-FCFS", [] { return std::make_unique<smc::FrfcfsScheduler>(); }},
      {"PAR-BS(8)", [] { return std::make_unique<smc::BatchScheduler>(8); }},
      {"BLISS(4)", [] { return std::make_unique<smc::BlacklistScheduler>(4); }},
  };
  for (const Policy& p : policies) {
    sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
    cfg.scheduler_factory = p.factory;
    t.add_row({p.name, std::to_string(run_kernel(cfg, "mvt"))});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void ablate_hardware_mc() {
  std::cout << "A3. Software vs hardware MC (trisolv execution cycles)\n";
  TextTable t;
  t.set_header({"controller", "cycles"});
  sys::SystemConfig soft = sys::jetson_nano_time_scaling();
  t.add_row({"software (SMC cycles charged)", std::to_string(run_kernel(soft, "trisolv"))});
  sys::SystemConfig hard = soft;
  hard.hardware_mc = true;
  hard.mc_sched_latency_cycles = 8;
  t.add_row({"hardware (8-cycle pipeline)", std::to_string(run_kernel(hard, "trisolv"))});
  t.print(std::cout);
  std::cout << '\n';
}

void ablate_interleaving() {
  std::cout << "A4. RowClone bank interleaving (2 MiB copy, measured cycles)\n";
  constexpr std::size_t kRows = 256;
  TextTable t;
  t.set_header({"allocation", "cycles", "DRAM busy (us)"});

  for (const bool interleaved : {false, true}) {
    sys::SystemConfig cfg = sys::jetson_nano_time_scaling();
    cfg.variation = strong_variation();
    sys::EasyDramSystem sysm(cfg);
    smc::RowClonePairTester tester(sysm.api(), 4);
    smc::RowCloneAllocator alloc(sysm.api(), sysm.clone_map(), tester);
    const auto plan = interleaved ? alloc.plan_copy_interleaved(kRows)
                                  : alloc.plan_copy(kRows);
    sysm.enable_rowclone();

    workloads::CopyInitParams params;
    params.kind = workloads::CopyInitParams::Kind::kCopy;
    params.use_rowclone = true;
    const smc::LinearMapper mapper(sysm.device().geometry());
    workloads::CopyInitTrace trace(params, mapper, plan, {});
    const cpu::RunResult r = sysm.run(trace);
    const std::int64_t cycles =
        r.markers.size() >= 2 ? r.markers.back() - r.markers.front() : r.cycles;
    t.add_row({interleaved ? "bank-interleaved" : "bank-sequential",
               std::to_string(cycles),
               fmt_fixed(sysm.smc_stats().dram_busy.microseconds(), 1)});
  }
  t.print(std::cout);
  std::cout << "\n(The single-issue MMIO trigger serializes operations, so\n"
               "interleaving mainly spreads activations; with a batched\n"
               "trigger interface it would overlap in-DRAM copies.)\n";
}

}  // namespace

int main() {
  bench::banner("Ablations: design choices of this reproduction",
                "DESIGN.md §4 (beyond the paper's figures)");
  ablate_batch_limit();
  ablate_scheduler();
  ablate_hardware_mc();
  ablate_interleaving();
  return 0;
}
