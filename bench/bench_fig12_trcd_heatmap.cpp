// Regenerates Figure 12: the minimum reliable tRCD of rows across the first
// two banks (4096 rows each), measured by the EasyAPI characterization flow
// (initialize with a known pattern, access under a reduced tRCD, compare).
// Prints an ASCII heatmap over the paper's (Row ID, Group ID) axes plus the
// headline statistics: every row below nominal, the strong-line fraction,
// and spatial clustering of weak rows.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "smc/trcd_profiler.hpp"

using namespace easydram;

int main() {
  bench::banner("Figure 12: minimum reliable tRCD heatmap",
                "EasyDRAM (DSN 2025), Fig. 12");

  sys::EasyDramSystem sysm(sys::jetson_nano_time_scaling());
  // The profiler sweep: nominal is 13.5 ns; test down in DRAM-clock steps.
  smc::TrcdProfiler profiler(
      sysm.api(), {Picoseconds{12000}, Picoseconds{10500}, Picoseconds{9000},
                   Picoseconds{7500}});

  constexpr std::uint32_t kRows = 4096;
  constexpr std::uint32_t kRowsPerGroup = 64;
  constexpr std::uint32_t kSampleLines = 24;  // Per test value, per row.

  for (std::uint32_t bank = 0; bank < 2; ++bank) {
    std::vector<Picoseconds> min_trcd(kRows);
    std::int64_t strong = 0;
    for (std::uint32_t row = 0; row < kRows; ++row) {
      // Classification at the 9.0 ns threshold scans every line (exact);
      // the heatmap value uses a sampled sweep (display only).
      const bool is_strong =
          profiler.row_reliable_at(bank, row, Picoseconds{9000});
      strong += is_strong ? 1 : 0;
      min_trcd[row] =
          profiler.profile_row(bank, row, kSampleLines).min_reliable;
    }

    std::cout << "Bank " << bank + 1
              << " — heatmap (rows x groups, 8x8 block averages; columns =\n"
                 "Row ID 0..63, rows = Group ID 0..63; symbols: '.' <=9.0ns,\n"
                 "':' <=9.75ns, '*' <=10.25ns, '#' >10.25ns)\n";
    for (std::uint32_t gblock = 0; gblock < kRows / kRowsPerGroup; gblock += 8) {
      std::string line;
      for (std::uint32_t rblock = 0; rblock < kRowsPerGroup; rblock += 8) {
        double sum = 0;
        for (std::uint32_t g = gblock; g < gblock + 8; ++g) {
          for (std::uint32_t r = rblock; r < rblock + 8; ++r) {
            sum += min_trcd[g * kRowsPerGroup + r].nanoseconds();
          }
        }
        const double avg = sum / 64.0;
        line += avg <= 9.0 ? '.' : avg <= 9.75 ? ':' : avg <= 10.25 ? '*' : '#';
      }
      std::cout << "  " << line << '\n';
    }

    Summary values;
    std::int64_t below_nominal = 0;
    std::int64_t weak_with_weak_neighbour = 0, weak_total = 0;
    for (std::uint32_t row = 0; row < kRows; ++row) {
      values.add(min_trcd[row].nanoseconds());
      if (min_trcd[row] < Picoseconds{13500}) ++below_nominal;
      if (min_trcd[row] > Picoseconds{9000}) {
        ++weak_total;
        if (row + 1 < kRows && min_trcd[row + 1] > Picoseconds{9000}) {
          ++weak_with_weak_neighbour;
        }
      }
    }
    std::cout << "  rows below nominal 13.5ns: " << below_nominal << "/" << kRows
              << "  strong (<=9.0ns): "
              << fmt_fixed(100.0 * static_cast<double>(strong) / kRows, 1)
              << "% (paper: 84.5% of lines)\n  measured range: ["
              << fmt_fixed(values.min(), 2) << ", " << fmt_fixed(values.max(), 2)
              << "] ns (paper colorbar: 9.0-10.5 ns)\n  weak-row clustering: "
              << fmt_fixed(100.0 * static_cast<double>(weak_with_weak_neighbour) /
                               static_cast<double>(std::max<std::int64_t>(weak_total, 1)),
                           1)
              << "% of weak rows have a weak successor (base rate "
              << fmt_fixed(100.0 * static_cast<double>(weak_total) / kRows, 1)
              << "%)\n\n";
  }

  std::cout << "Lines characterized: " << profiler.lines_tested() << "\n";
  return 0;
}
