// Regenerates Figure 12: the minimum reliable tRCD heatmap of the first two
// banks, measured by the EasyAPI characterization flow
// (src/cli/scenarios_trcd.cpp holds the profiling sweep).

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("fig12_trcd_heatmap", argc, argv);
}
