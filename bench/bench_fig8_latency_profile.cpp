// Regenerates Figure 8: average cycles per load of the lmbench-style memory
// read latency microbenchmark over 1 KiB .. 16 MiB buffers on three systems
// (src/cli/scenarios_system.cpp holds the measurement).

#include "cli/scenario.hpp"

int main(int argc, char** argv) {
  return easydram::cli::scenario_main("fig8_latency_profile", argc, argv);
}
