// Regenerates Figure 8: average cycles per load instruction for the
// lmbench-style memory read latency microbenchmark over buffer sizes
// 1 KiB .. 16 MiB, on three systems: EasyDRAM - No Time Scaling, EasyDRAM -
// Time Scaling, and the real Cortex A57 board (modelled here as the
// reference-mode A57 system with the Jetson Nano's 2 MiB L2, per §6).

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "workloads/lmbench.hpp"

using namespace easydram;

namespace {

double cycles_per_load(const sys::SystemConfig& cfg, std::uint64_t bytes) {
  sys::EasyDramSystem sysm(cfg);
  // Scale passes so cold misses do not dominate small buffers.
  const int passes =
      static_cast<int>(std::clamp<std::uint64_t>((8ull << 20) / bytes, 4, 128));
  auto records = workloads::make_lmbench_chase(bytes, passes);
  cpu::VectorTrace trace(std::move(records));
  const cpu::RunResult r = sysm.run(trace);
  return static_cast<double>(r.cycles) / static_cast<double>(r.loads);
}

}  // namespace

int main() {
  bench::banner("Figure 8: lmbench latency profile",
                "EasyDRAM (DSN 2025), Fig. 8");

  // Real board: A57 at 1.43 GHz with the Jetson Nano's 2 MiB L2, served by
  // a hardware memory controller (reference mode).
  sys::SystemConfig a57 = sys::jetson_nano_time_scaling();
  a57.mode = timescale::SystemMode::kReference;
  a57.proc_domain = timescale::DomainConfig{Frequency{1'430'000'000},
                                            Frequency{1'430'000'000}};
  a57.caches = cpu::jetson_nano_caches();

  const sys::SystemConfig ts = sys::jetson_nano_time_scaling();
  const sys::SystemConfig nts = sys::pidram_no_time_scaling();

  TextTable t;
  t.set_header({"Size (KiB)", "EasyDRAM - No Time Scaling",
                "EasyDRAM - Time Scaling", "Cortex A57 (2 MiB L2)"});
  for (std::uint64_t kib = 1; kib <= 16 * 1024; kib *= 2) {
    const std::uint64_t bytes = kib * 1024;
    t.add_row({std::to_string(kib), fmt_fixed(cycles_per_load(nts, bytes), 1),
               fmt_fixed(cycles_per_load(ts, bytes), 1),
               fmt_fixed(cycles_per_load(a57, bytes), 1)});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape (paper Fig. 8): the No-Time-Scaling curve\n"
               "shows a much lower main-memory plateau (few tens of cycles at\n"
               "50 MHz); Time Scaling tracks the Cortex A57 profile, with the\n"
               "L2->memory transition at 512 KiB instead of 2 MiB because the\n"
               "EasyDRAM build has a smaller L2 (noted in the paper).\n";
  return 0;
}
